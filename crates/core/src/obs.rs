//! Run-level observability: metrics time-series, progress reporting and
//! stall detection for [`crate::system::BeaconSystem`] runs.
//!
//! Harnesses (the `figures` binary, integration tests) call [`install`]
//! once with an [`ObsConfig`]; every subsequent [`drive`]n run on the
//! same thread then samples the system's gauges, prints periodic
//! progress lines and watches for stalls. [`take`] collects the
//! accumulated [`MetricsSeries`] at the end. When nothing is installed,
//! [`drive`] degrades to a plain `Engine::run` with only the stall
//! detector's default window active — zero observable overhead.

use std::cell::RefCell;

use beacon_sim::component::{Probe, Tick};
use beacon_sim::cycle::Cycle;
use beacon_sim::engine::{Engine, EngineHooks, Progress, RunOutcome, StallReport};
use beacon_sim::metrics::{MetricsSample, MetricsSeries};

/// Default stall-detection window in cycles (~0.125 s of DDR4-1600 bus
/// time): long enough that refresh storms and deep backlogs never trip
/// it, short enough to turn an infinite hang into a diagnosis.
pub const DEFAULT_STALL_WINDOW: u64 = 100_000_000;

/// What to observe during driven runs. Zero cadences disable the
/// corresponding hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Sample gauges every this many cycles (0 = no metrics).
    pub metrics_every: u64,
    /// Print a progress line every this many cycles (0 = silent).
    pub progress_every: u64,
    /// Declare a stall after this many cycles without forward progress
    /// (0 = stall detection off).
    pub stall_window: u64,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            metrics_every: 0,
            progress_every: 0,
            stall_window: DEFAULT_STALL_WINDOW,
        }
    }
}

struct ObsState {
    cfg: ObsConfig,
    series: MetricsSeries,
    /// Index assigned to the next driven run (the `run` column).
    runs: u32,
}

thread_local! {
    static STATE: RefCell<Option<ObsState>> = const { RefCell::new(None) };
}

/// Installs `cfg` for subsequent [`drive`]n runs on this thread,
/// discarding any previously accumulated series.
pub fn install(cfg: ObsConfig) {
    STATE.with(|s| {
        *s.borrow_mut() = Some(ObsState {
            cfg,
            series: MetricsSeries::new(),
            runs: 0,
        });
    });
}

/// Uninstalls the configuration and returns the metrics accumulated
/// across every run since [`install`]; `None` when nothing is installed.
pub fn take() -> Option<MetricsSeries> {
    STATE.with(|s| s.borrow_mut().take().map(|st| st.series))
}

/// True when an [`ObsConfig`] is installed on this thread.
pub fn active() -> bool {
    STATE.with(|s| s.borrow().is_some())
}

/// The installed configuration and the index the next driven run will
/// get, without mutating either. The parallel driver mirrors [`drive`]
/// with this plus [`commit`].
pub(crate) fn snapshot() -> Option<(ObsConfig, u32)> {
    STATE.with(|s| s.borrow().as_ref().map(|st| (st.cfg, st.runs)))
}

/// Records one finished run: bumps the run index and appends the
/// samples it collected to the thread-local series.
pub(crate) fn commit(samples: Vec<MetricsSample>) {
    STATE.with(|s| {
        if let Some(st) = s.borrow_mut().as_mut() {
            st.runs += 1;
            for sample in samples {
                st.series.push(sample);
            }
        }
    });
}

/// Runs `model` to completion on `engine`, honouring the installed
/// [`ObsConfig`] (if any). Samples land in the thread-local series for
/// [`take`]; progress and stall reports go to stderr.
pub fn drive<T: Tick + Probe>(engine: &mut Engine, model: &mut T) -> RunOutcome {
    let installed = STATE.with(|s| s.borrow().as_ref().map(|st| (st.cfg, st.runs)));
    let Some((cfg, run)) = installed else {
        // No harness config: plain run, but keep the stall safety net so
        // a wiring bug dies with a diagnosis instead of spinning forever.
        let mut hooks = EngineHooks {
            stall_window: DEFAULT_STALL_WINDOW,
            on_stall: Some(Box::new(report_stall)),
            ..EngineHooks::default()
        };
        return engine.run_instrumented(model, &mut hooks);
    };

    let mut samples: Vec<MetricsSample> = Vec::new();
    let mut hooks = EngineHooks {
        stall_window: cfg.stall_window,
        on_stall: Some(Box::new(report_stall)),
        ..EngineHooks::default()
    };
    if cfg.metrics_every > 0 {
        hooks.sample_every = cfg.metrics_every;
        hooks.on_sample = Some(Box::new(|now: Cycle, probe: &dyn Probe| {
            let mut values = Vec::new();
            probe.gauges(&mut values);
            values.push(("events".to_owned(), probe.progress_counter() as f64));
            samples.push(MetricsSample {
                run,
                cycle: now.as_u64(),
                values,
            });
        }));
    }
    if cfg.progress_every > 0 {
        hooks.progress_every = cfg.progress_every;
        hooks.on_progress = Some(Box::new(move |p: &Progress| {
            eprintln!(
                "[beacon run {run}] cycle {} | {} events | {:.1} Mcyc/s effective ({:.1} ticked)",
                p.now.as_u64(),
                p.events,
                p.cycles_per_sec / 1e6,
                p.ticked_per_sec / 1e6,
            );
        }));
    }

    let outcome = engine.run_instrumented(model, &mut hooks);
    drop(hooks);

    STATE.with(|s| {
        if let Some(st) = s.borrow_mut().as_mut() {
            st.runs += 1;
            for sample in samples {
                st.series.push(sample);
            }
        }
    });
    outcome
}

pub(crate) fn report_stall(r: &StallReport) {
    eprintln!(
        "[beacon] STALL at cycle {} (no progress since {}, {} events):\n{}",
        r.at.as_u64(),
        r.last_progress_at.as_u64(),
        r.events,
        r.snapshot,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use beacon_sim::component::Tick;
    use beacon_sim::cycle::Cycle;

    struct Countdown {
        n: u64,
    }

    impl Tick for Countdown {
        fn tick(&mut self, _now: Cycle) {
            self.n = self.n.saturating_sub(1);
        }
        fn is_idle(&self) -> bool {
            self.n == 0
        }
    }

    impl Probe for Countdown {
        fn progress_counter(&self) -> u64 {
            u64::MAX - self.n
        }
        fn gauges(&self, out: &mut Vec<(String, f64)>) {
            out.push(("n".to_owned(), self.n as f64));
        }
    }

    #[test]
    fn drive_without_install_matches_plain_run() {
        let mut engine = Engine::new();
        let outcome = drive(&mut engine, &mut Countdown { n: 25 });
        assert_eq!(outcome.finished_at(), Cycle::new(25));
        assert!(take().is_none());
    }

    #[test]
    fn drive_collects_samples_across_runs() {
        install(ObsConfig {
            metrics_every: 10,
            progress_every: 0,
            stall_window: DEFAULT_STALL_WINDOW,
        });
        assert!(active());
        drive(&mut Engine::new(), &mut Countdown { n: 25 });
        drive(&mut Engine::new(), &mut Countdown { n: 5 });
        let series = take().expect("installed");
        assert!(!active());
        // Run 0: cycles 0, 10, 20, 25; run 1: cycles 0, 5.
        assert_eq!(series.len(), 6);
        assert_eq!(series.samples()[0].run, 0);
        assert_eq!(series.samples()[4].run, 1);
        let jsonl = series.to_jsonl();
        assert!(jsonl.contains("\"n\":"));
        assert!(jsonl.contains("\"events\":"));
    }

    #[test]
    fn install_resets_previous_series() {
        install(ObsConfig {
            metrics_every: 10,
            ..ObsConfig::default()
        });
        drive(&mut Engine::new(), &mut Countdown { n: 15 });
        install(ObsConfig {
            metrics_every: 10,
            ..ObsConfig::default()
        });
        drive(&mut Engine::new(), &mut Countdown { n: 5 });
        let series = take().expect("installed");
        assert_eq!(series.len(), 2); // only the second run's samples
        assert_eq!(series.samples()[0].run, 0);
    }
}
