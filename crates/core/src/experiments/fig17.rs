//! Fig. 17: energy breakdown (communication / memory / computation)
//! across the optimisation ladder, averaged over the applications.

use serde::{Deserialize, Serialize};

use beacon_genomics::genome::GenomeId;

use crate::config::BeaconVariant;
use crate::report::{fmt_pct, Table};

use super::common::{
    fm_workload, hash_workload, kmer_workload, run_cpu, run_medal, run_nest, WorkloadScale,
};
use super::ladder::{run_ladder, LadderResult};
use crate::energy::{EnergyModel, PeHardware};

/// Average energy shares at one ladder step.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BreakdownStep {
    /// Design-point label.
    pub label: String,
    /// Mean communication share.
    pub comm_share: f64,
    /// Mean computation share.
    pub compute_share: f64,
    /// Mean memory (DRAM) share.
    pub memory_share: f64,
}

/// The figure's data for one variant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig17Half {
    /// Which design.
    pub variant: BeaconVariant,
    /// Ladder steps with averaged shares.
    pub steps: Vec<BreakdownStep>,
}

impl Fig17Half {
    /// Renders this half of the figure.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            format!("Fig. 17 — energy breakdown — {}", self.variant.label()),
            &["design point", "communication", "memory", "computation"],
        );
        for s in &self.steps {
            t.row(&[
                s.label.clone(),
                fmt_pct(s.comm_share),
                fmt_pct(s.memory_share),
                fmt_pct(s.compute_share),
            ]);
        }
        t.render()
    }
}

/// Both halves.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig17 {
    /// BEACON-D breakdown.
    pub d: Fig17Half,
    /// BEACON-S breakdown.
    pub s: Fig17Half,
}

impl Fig17 {
    /// Renders the figure.
    pub fn render(&self) -> String {
        format!("{}{}", self.d.render(), self.s.render())
    }
}

fn average_steps(ladders: &[LadderResult], variant: BeaconVariant) -> Fig17Half {
    // Collect the union of labels in ladder order, then average the
    // shares of every ladder that has each label.
    let mut labels: Vec<String> = Vec::new();
    for l in ladders {
        for p in &l.points {
            if !labels.contains(&p.label) {
                labels.push(p.label.clone());
            }
        }
    }
    let steps = labels
        .into_iter()
        .map(|label| {
            let shares: Vec<(f64, f64)> = ladders
                .iter()
                .flat_map(|l| l.points.iter().filter(|p| p.label == label))
                .map(|p| (p.comm_energy_share, p.compute_energy_share))
                .collect();
            let n = shares.len().max(1) as f64;
            let comm = shares.iter().map(|s| s.0).sum::<f64>() / n;
            let compute = shares.iter().map(|s| s.1).sum::<f64>() / n;
            BreakdownStep {
                label,
                comm_share: comm,
                compute_share: compute,
                memory_share: 1.0 - comm - compute,
            }
        })
        .collect();
    Fig17Half { variant, steps }
}

/// Runs the figure: ladders for the three ladder apps (FM seeding, hash
/// seeding on Pt, k-mer counting) and averages their shares per step.
pub fn run(scale: &WorkloadScale, pes: usize) -> Fig17 {
    let medal_model = EnergyModel::ddr_baseline(PeHardware::MEDAL, 4 * pes);
    let nest_model = EnergyModel::ddr_baseline(PeHardware::NEST, 4 * pes);

    let mut d = Vec::new();
    let mut s = Vec::new();

    for variant in [BeaconVariant::D, BeaconVariant::S] {
        let out = match variant {
            BeaconVariant::D => &mut d,
            BeaconVariant::S => &mut s,
        };
        // FM seeding.
        let w = fm_workload(GenomeId::Pt, scale);
        let cpu = run_cpu(&w);
        let medal = run_medal(&w, false, pes);
        let me = medal_model.breakdown(&medal);
        out.push(run_ladder(variant, "Pt", &w, &cpu, &medal, &me, pes));
        // Hash seeding.
        let w = hash_workload(GenomeId::Pt, scale);
        let cpu = run_cpu(&w);
        let medal = run_medal(&w, false, pes);
        let me = medal_model.breakdown(&medal);
        out.push(run_ladder(variant, "Pt", &w, &cpu, &medal, &me, pes));
        // k-mer counting.
        let w = kmer_workload(scale);
        let cpu = run_cpu(&w);
        let nest = run_nest(&w, scale.cbf_bytes, false, pes);
        let ne = nest_model.breakdown(&nest);
        out.push(run_ladder(variant, "human", &w, &cpu, &nest, &ne, pes));
    }

    Fig17 {
        d: average_steps(&d, BeaconVariant::D),
        s: average_steps(&s, BeaconVariant::S),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimisations_shrink_communication_share() {
        let scale = WorkloadScale::test();
        let fig = run(&scale, 4);
        for half in [&fig.d, &fig.s] {
            assert!(half.steps.len() >= 4);
            let first = &half.steps[0];
            // The +placement/mapping step (index 3) must not raise the
            // communication share (paper: ~60% → ~14%; at the tiny test
            // scale the shares are small and we only assert direction
            // within noise).
            let late = &half.steps[3];
            assert!(
                late.comm_share < first.comm_share + 0.02,
                "{}: comm share must not grow ({} -> {})",
                half.variant.label(),
                first.comm_share,
                late.comm_share
            );
            // Computation is a small slice (paper: <1%; we allow a few %).
            assert!(half.steps.iter().all(|s| s.compute_share < 0.25));
            // Shares are proper fractions.
            for s in &half.steps {
                assert!((0.0..=1.0).contains(&s.comm_share));
                assert!((-0.01..=1.0).contains(&s.memory_share));
            }
        }
        assert!(fig.render().contains("energy breakdown"));
    }
}
