//! Generic machinery for the step-by-step optimisation-ladder figures
//! (Figs. 12, 14, 15).

use beacon_accel::cpu_model::CpuRun;
use beacon_accel::result::RunResult;
use serde::{Deserialize, Serialize};

use crate::config::{BeaconVariant, Optimizations};
use crate::energy::{EnergyBreakdown, EnergyModel};
use crate::report::{fmt_pct, fmt_ratio, Table};

use super::common::{run_beacon, AppWorkload};

/// One evaluated design point of a ladder.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LadderPoint {
    /// Paper label of the point ("CXL-vanilla", "+data packing", …).
    pub label: String,
    /// Simulated cycles.
    pub cycles: u64,
    /// Speedup over the 48-thread CPU baseline.
    pub speedup_vs_cpu: f64,
    /// Speedup over the hardware baseline (MEDAL/NEST).
    pub speedup_vs_baseline: f64,
    /// Energy reduction over the CPU baseline.
    pub energy_reduction_vs_cpu: f64,
    /// Energy efficiency relative to the hardware baseline (1.0 = equal).
    pub energy_eff_vs_baseline: f64,
    /// Fraction of total energy spent on communication.
    pub comm_energy_share: f64,
    /// Fraction of total energy spent on computation.
    pub compute_energy_share: f64,
    /// Full energy breakdown.
    pub energy: EnergyBreakdown,
}

/// A full ladder on one workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LadderResult {
    /// Which design.
    pub variant: BeaconVariant,
    /// Dataset label (genome).
    pub dataset: String,
    /// Points in paper order.
    pub points: Vec<LadderPoint>,
    /// Final-point performance as a fraction of idealised communication.
    pub pct_of_ideal_perf: f64,
    /// Final-point energy efficiency as a fraction of idealised
    /// communication.
    pub pct_of_ideal_energy: f64,
}

impl LadderResult {
    /// The fully-optimised point.
    pub fn full(&self) -> &LadderPoint {
        self.points.last().expect("ladder non-empty")
    }

    /// The vanilla point.
    pub fn vanilla(&self) -> &LadderPoint {
        self.points.first().expect("ladder non-empty")
    }

    /// Overall gain of the optimisations (full vs vanilla performance).
    pub fn optimisation_gain(&self) -> f64 {
        self.vanilla().cycles as f64 / self.full().cycles as f64
    }

    /// Overall energy-efficiency gain of the optimisations.
    pub fn optimisation_energy_gain(&self) -> f64 {
        self.vanilla().energy.total_pj() / self.full().energy.total_pj()
    }
}

/// Runs the cumulative ladder for one workload against precomputed
/// baselines.
pub fn run_ladder(
    variant: BeaconVariant,
    dataset: &str,
    workload: &AppWorkload,
    cpu: &CpuRun,
    baseline: &RunResult,
    baseline_energy: &EnergyBreakdown,
    pes_per_module: usize,
) -> LadderResult {
    let total_pes = 512.min(pes_per_module * 4);
    let model = EnergyModel::beacon(total_pes);

    let mut points = Vec::new();
    for (label, opts) in Optimizations::ladder(variant, workload.app) {
        let run = run_beacon(variant, opts, workload, pes_per_module);
        let energy = model.breakdown(&run);
        points.push(make_point(
            label,
            &run,
            &energy,
            cpu,
            baseline,
            baseline_energy,
        ));
    }

    // Idealised-communication reference for the "% of ideal" statistic.
    let ideal_opts = Optimizations::full_ideal(variant, workload.app);
    let ideal = run_beacon(variant, ideal_opts, workload, pes_per_module);
    let ideal_energy = model.breakdown(&ideal);

    let full = points.last().expect("ladder non-empty");
    let pct_of_ideal_perf = (ideal.cycles as f64 / full.cycles as f64).min(1.0);
    let pct_of_ideal_energy = (ideal_energy.total_pj() / full.energy.total_pj()).min(1.0);

    LadderResult {
        variant,
        dataset: dataset.to_owned(),
        points,
        pct_of_ideal_perf,
        pct_of_ideal_energy,
    }
}

fn make_point(
    label: &str,
    run: &RunResult,
    energy: &EnergyBreakdown,
    cpu: &CpuRun,
    baseline: &RunResult,
    baseline_energy: &EnergyBreakdown,
) -> LadderPoint {
    let cpu_pj = cpu.energy_joules * 1e12;
    LadderPoint {
        label: label.to_owned(),
        cycles: run.cycles,
        speedup_vs_cpu: cpu.dram_cycles as f64 / run.cycles as f64,
        speedup_vs_baseline: baseline.cycles as f64 / run.cycles as f64,
        energy_reduction_vs_cpu: cpu_pj / energy.total_pj(),
        energy_eff_vs_baseline: baseline_energy.total_pj() / energy.total_pj(),
        comm_energy_share: energy.comm_share(),
        compute_energy_share: energy.compute_share(),
        energy: *energy,
    }
}

/// Renders a set of per-dataset ladders as the paper's figure table.
pub fn render_ladders(title: &str, ladders: &[LadderResult]) -> String {
    let mut out = String::new();
    for l in ladders {
        let mut t = Table::new(
            format!("{title} — {} — {}", l.variant.label(), l.dataset),
            &[
                "design point",
                "cycles",
                "vs CPU",
                "vs baseline",
                "energy vs CPU",
                "energy vs baseline",
                "comm share",
            ],
        );
        for p in &l.points {
            t.row(&[
                p.label.clone(),
                p.cycles.to_string(),
                fmt_ratio(p.speedup_vs_cpu),
                fmt_ratio(p.speedup_vs_baseline),
                fmt_ratio(p.energy_reduction_vs_cpu),
                fmt_pct(p.energy_eff_vs_baseline),
                fmt_pct(p.comm_energy_share),
            ]);
        }
        out.push_str(&t.render());
        out.push_str(&format!(
            "performance vs idealized communication: {}\n",
            fmt_pct(l.pct_of_ideal_perf)
        ));
        out.push_str(&format!(
            "energy efficiency vs idealized communication: {}\n\n",
            fmt_pct(l.pct_of_ideal_energy)
        ));
    }
    out
}

/// Geometric mean over datasets of a per-ladder metric.
pub fn geomean<F: Fn(&LadderResult) -> f64>(ladders: &[LadderResult], f: F) -> f64 {
    if ladders.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = ladders.iter().map(|l| f(l).max(1e-12).ln()).sum();
    (log_sum / ladders.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::PeHardware;
    use crate::experiments::common::{fm_workload, run_cpu, run_medal, WorkloadScale};
    use beacon_genomics::genome::GenomeId;

    #[test]
    fn ladder_runs_all_points_for_fm_on_d() {
        let scale = WorkloadScale::test();
        let w = fm_workload(GenomeId::Pt, &scale);
        let cpu = run_cpu(&w);
        let medal = run_medal(&w, false, 8);
        let medal_energy = EnergyModel::ddr_baseline(PeHardware::MEDAL, 32).breakdown(&medal);
        let l = run_ladder(BeaconVariant::D, "Pt", &w, &cpu, &medal, &medal_energy, 8);
        assert_eq!(l.points.len(), 5);
        assert!(l.full().speedup_vs_cpu > 1.0, "NDP must beat the CPU");
        assert!(
            l.optimisation_gain() > 1.0,
            "the ladder must improve on vanilla (got {:.3})",
            l.optimisation_gain()
        );
        assert!(l.pct_of_ideal_perf > 0.3);
        let text = render_ladders("Fig12-like", &[l]);
        assert!(text.contains("CXL-vanilla"));
        assert!(text.contains("idealized communication"));
    }

    #[test]
    fn geomean_of_constant_is_constant() {
        let scale = WorkloadScale::test();
        let w = fm_workload(GenomeId::Pt, &scale);
        let cpu = run_cpu(&w);
        let medal = run_medal(&w, false, 8);
        let medal_energy = EnergyModel::ddr_baseline(PeHardware::MEDAL, 32).breakdown(&medal);
        let l = run_ladder(BeaconVariant::D, "Pt", &w, &cpu, &medal, &medal_energy, 8);
        let g = geomean(&[l.clone(), l], |x| x.optimisation_gain());
        assert!(g > 0.0);
    }
}
