//! Fig. 13: normalized per-chip memory access for FM-index seeding on
//! BEACON-D, without and with multi-chip coalescing.

use serde::{Deserialize, Serialize};

use beacon_genomics::genome::GenomeId;
use beacon_sim::stats::Histogram;

use crate::config::{BeaconConfig, BeaconVariant, Optimizations};
use crate::mmf::build_layout;
use crate::report::Table;
use crate::system::BeaconSystem;

use super::common::{fm_workload, WorkloadScale};

/// The figure's data: per-chip access counts for the two design points.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig13 {
    /// Per-chip accesses without coalescing (per-chip chip select).
    pub without: Histogram,
    /// Per-chip accesses with multi-chip coalescing.
    pub with_coalescing: Histogram,
}

impl Fig13 {
    /// Imbalance (coefficient of variation) without coalescing.
    pub fn cv_without(&self) -> f64 {
        self.without.coefficient_of_variation()
    }

    /// Imbalance with coalescing.
    pub fn cv_with(&self) -> f64 {
        self.with_coalescing.coefficient_of_variation()
    }

    /// Renders both histograms normalised to their mean.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, h) in [
            ("(a) without multi-chip coalescing", &self.without),
            ("(b) with multi-chip coalescing", &self.with_coalescing),
        ] {
            let mut t = Table::new(
                format!("Fig. 13 {name}"),
                &["chip", "accesses", "normalized"],
            );
            let mean = h.mean().max(1e-9);
            for (i, &b) in h.buckets().iter().enumerate() {
                t.row(&[
                    i.to_string(),
                    b.to_string(),
                    format!("{:.3}", b as f64 / mean),
                ]);
            }
            out.push_str(&t.render());
            out.push_str(&format!(
                "coefficient of variation: {:.4}\n\n",
                h.coefficient_of_variation()
            ));
        }
        out
    }
}

/// Runs the experiment on the Pt genome.
///
/// The per-chip imbalance comes from hot Occ buckets (shared search
/// prefixes); its relative magnitude shrinks as the scaled index grows,
/// so the experiment pins the genome to the size whose skew matches the
/// full-size system (≈2-4x over the mean, as in the paper's figure).
pub fn run(scale: &WorkloadScale, pes: usize) -> Fig13 {
    let mut scale = *scale;
    scale.pt_genome_len = scale.pt_genome_len.min(60_000);
    let w = fm_workload(GenomeId::Pt, &scale);
    let app = w.app;

    let mut base_opts = Optimizations::full(BeaconVariant::D, app);
    base_opts.multi_chip_coalescing = None;
    let mut coal_opts = base_opts;
    coal_opts.multi_chip_coalescing = Some(8);

    let mut histograms = Vec::new();
    for opts in [base_opts, coal_opts] {
        let mut cfg = BeaconConfig::paper_d(app).with_opts(opts);
        cfg.pes_per_module = pes;
        cfg.refresh_enabled = false;
        let layout = build_layout(&cfg, &w.layout);
        let mut sys = BeaconSystem::new(cfg, layout);
        sys.submit_round_robin(w.traces.iter().cloned());
        let _ = sys.run();
        histograms.push(sys.cxlg_chip_histogram().expect("CXLG DIMMs exist"));
    }
    let with_coalescing = histograms.pop().expect("two runs");
    let without = histograms.pop().expect("two runs");
    Fig13 {
        without,
        with_coalescing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalescing_balances_chip_load() {
        let scale = WorkloadScale::test();
        let fig = run(&scale, 8);
        assert!(fig.without.total() > 0);
        assert!(fig.with_coalescing.total() > 0);
        // The paper's claim: coalescing evens out per-chip access.
        assert!(
            fig.cv_with() < fig.cv_without(),
            "CV with ({:.4}) must be below CV without ({:.4})",
            fig.cv_with(),
            fig.cv_without()
        );
        let text = fig.render();
        assert!(text.contains("coefficient of variation"));
    }
}
