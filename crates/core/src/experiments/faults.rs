//! Fault sweep: RAS behaviour of the pool under injected faults.
//!
//! Not a paper figure — the paper's §VII scalability story assumes a
//! healthy pool — but the natural companion experiment for a CXL
//! memory pool: how much performance the retry/failover machinery
//! costs as the link error rate rises, and what a whole-DIMM failure
//! does to a run in flight. Driven by `figures --faults <seed>`.

use serde::{Deserialize, Serialize};

use beacon_accel::result::DegradedRun;
use beacon_genomics::genome::GenomeId;

use crate::config::{BeaconConfig, BeaconVariant, FaultsConfig, Optimizations};
use crate::mmf::build_layout;
use crate::report::{fmt_ratio, Table};
use crate::system::BeaconSystem;

use super::common::{fm_workload, prealign_workload, AppWorkload, WorkloadScale};

/// One row of the error-rate sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Injected CRC error rate (errors per million cycles per link
    /// direction; flap and UE rates scale along, see
    /// [`FaultsConfig::noisy`]).
    pub rate: f64,
    /// End-to-end cycles of the faulty run.
    pub cycles: u64,
    /// Slowdown vs. the fault-free run.
    pub slowdown: f64,
    /// RAS report of the run.
    pub degraded: DegradedRun,
}

/// The `--faults` experiment: an error-rate sweep plus a whole-DIMM
/// failure, both seeded.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultSweep {
    /// The fault seed every schedule in the sweep derives from.
    pub seed: u64,
    /// Error-rate sweep on the FM-index seeding workload.
    pub sweep: Vec<SweepPoint>,
    /// DIMM-loss run on the pre-alignment workload (its reference
    /// region lives on the unmodified DIMMs whole-DIMM failure kills).
    pub dimm_loss: DegradedRun,
    /// Cycles of the healthy pre-alignment run.
    pub healthy_cycles: u64,
    /// Cycles of the degraded pre-alignment run.
    pub degraded_cycles: u64,
}

fn build(w: &AppWorkload, pes: usize, faults: FaultsConfig) -> BeaconSystem {
    let variant = BeaconVariant::D;
    let mut cfg =
        BeaconConfig::paper(variant, w.app).with_opts(Optimizations::full(variant, w.app));
    cfg.pes_per_module = pes;
    cfg.refresh_enabled = false;
    cfg = cfg.with_faults(faults);
    let layout = build_layout(&cfg, &w.layout);
    let mut sys = BeaconSystem::new(cfg, layout);
    sys.submit_round_robin(w.traces.iter().cloned());
    sys
}

/// Runs the sweep and the DIMM-loss experiment.
pub fn run(scale: &WorkloadScale, pes: usize, seed: u64) -> FaultSweep {
    let threads = crate::parallel::threads();
    let run_one = |w: &AppWorkload, faults: FaultsConfig| {
        let mut sys = build(w, pes, faults);
        if threads > 1 {
            sys.run_parallel(threads)
        } else {
            sys.run()
        }
    };

    // Error-rate sweep: 0 (armed but quiet) up through rates far past
    // anything a healthy CXL link would show, to make the retry cost
    // visible at bench scale.
    let w = fm_workload(GenomeId::Pt, scale);
    let mut sweep = Vec::new();
    let mut baseline = 0u64;
    for rate in [0.0, 10.0, 40.0, 160.0] {
        let faults = if rate == 0.0 {
            FaultsConfig::quiet(seed)
        } else {
            FaultsConfig::noisy(seed, rate)
        };
        let r = run_one(&w, faults);
        if rate == 0.0 {
            baseline = r.cycles;
        }
        sweep.push(SweepPoint {
            rate,
            cycles: r.cycles,
            slowdown: r.cycles as f64 / baseline as f64,
            degraded: r.degraded.expect("armed run carries a RAS report"),
        });
    }

    // Whole-DIMM failure a third of the way into the run.
    let w = prealign_workload(GenomeId::Pg, scale);
    let healthy = run_one(&w, FaultsConfig::quiet(seed));
    let degraded = run_one(&w, FaultsConfig::dimm_loss(seed, 0, 2, healthy.cycles / 3));
    FaultSweep {
        seed,
        sweep,
        dimm_loss: degraded.degraded.expect("armed run carries a RAS report"),
        healthy_cycles: healthy.cycles,
        degraded_cycles: degraded.cycles,
    }
}

impl FaultSweep {
    /// Renders the sweep table and the DIMM-loss report.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            format!("Fault sweep — BEACON-D, FM-seeding, seed {}", self.seed),
            &[
                "errors/Mcycle",
                "cycles",
                "slowdown",
                "crc errors",
                "retry cycles",
                "port flaps",
                "dimm UE",
                "naks",
                "requeued",
            ],
        );
        for p in &self.sweep {
            let d = &p.degraded;
            t.row(&[
                format!("{:.0}", p.rate),
                p.cycles.to_string(),
                fmt_ratio(p.slowdown),
                d.crc_errors.to_string(),
                d.retry_cycles.to_string(),
                d.port_flaps.to_string(),
                d.dimm_ue.to_string(),
                d.naks.to_string(),
                d.requeued.to_string(),
            ]);
        }
        let d = &self.dimm_loss;
        let mut out = t.render();
        out.push_str(&format!(
            "DIMM loss — pre-alignment, DIMM(0,2) killed at cycle {}:\n\
             \x20 healthy {} cycles -> degraded {} cycles ({} slowdown)\n\
             \x20 failed DIMMs {}, lost capacity {} bytes\n\
             \x20 naks {}, requeued {}, dropped {}\n\
             \x20 re-map: {} regions, {} bytes moved, {} migration cycles\n",
            self.healthy_cycles / 3,
            self.healthy_cycles,
            self.degraded_cycles,
            fmt_ratio(self.degraded_cycles as f64 / self.healthy_cycles as f64),
            d.failed_dimms,
            d.lost_capacity_bytes,
            d.naks,
            d.requeued,
            d.dropped,
            d.remap_regions,
            d.moved_bytes,
            d.remap_cost_cycles,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_and_degrades_monotonically_enough() {
        let scale = WorkloadScale::test();
        let f = run(&scale, 8, 42);
        assert_eq!(f.sweep.len(), 4);
        assert_eq!(f.sweep[0].slowdown, 1.0, "rate 0 is the baseline");
        assert!(f.sweep[0].degraded.is_clean());
        let worst = &f.sweep[3];
        assert!(worst.degraded.crc_errors > 0, "top rate must fire");
        assert!(worst.slowdown >= 1.0);
        assert_eq!(f.dimm_loss.failed_dimms, 1);
        assert!(f.dimm_loss.lost_capacity_bytes > 0);
        assert!(f.degraded_cycles > f.healthy_cycles);
        let rendered = f.render();
        assert!(rendered.contains("Fault sweep"));
        assert!(rendered.contains("DIMM loss"));
    }
}
