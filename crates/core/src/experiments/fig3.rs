//! Fig. 3: how much the DDR-DIMM baselines gain from idealised
//! communication — the motivation experiment showing that communication
//! bottlenecks MEDAL/NEST.

use serde::{Deserialize, Serialize};

use beacon_genomics::genome::GenomeId;

use crate::energy::{EnergyModel, PeHardware};
use crate::report::{fmt_ratio, Table};

use super::common::{
    fm_workload, hash_workload, kmer_workload, run_medal, run_nest, WorkloadScale,
};

/// One bar of Fig. 3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Bar {
    /// Baseline + workload label.
    pub label: String,
    /// Performance improvement with idealised communication.
    pub perf_improvement: f64,
    /// Energy-efficiency improvement with idealised communication.
    pub energy_improvement: f64,
}

/// The full figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3 {
    /// Bars in paper order.
    pub bars: Vec<Fig3Bar>,
}

impl Fig3 {
    /// Average (geometric mean) performance improvement.
    pub fn mean_perf(&self) -> f64 {
        geo(self.bars.iter().map(|b| b.perf_improvement))
    }

    /// Average (geometric mean) energy improvement.
    pub fn mean_energy(&self) -> f64 {
        geo(self.bars.iter().map(|b| b.energy_improvement))
    }

    /// Renders the figure as a table.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Fig. 3 — DDR-DIMM baselines with idealized communication",
            &["workload", "perf improvement", "energy-eff improvement"],
        );
        for b in &self.bars {
            t.row(&[
                b.label.clone(),
                fmt_ratio(b.perf_improvement),
                fmt_ratio(b.energy_improvement),
            ]);
        }
        let mut out = t.render();
        out.push_str(&format!(
            "average: perf {} energy {}\n",
            fmt_ratio(self.mean_perf()),
            fmt_ratio(self.mean_energy())
        ));
        out
    }
}

fn geo<I: Iterator<Item = f64>>(xs: I) -> f64 {
    let v: Vec<f64> = xs.collect();
    if v.is_empty() {
        return 0.0;
    }
    (v.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / v.len() as f64).exp()
}

/// Runs the figure: MEDAL on FM and hash seeding over the five genomes,
/// NEST on k-mer counting, each real vs idealised communication.
pub fn run(scale: &WorkloadScale, pes: usize) -> Fig3 {
    let medal_energy = EnergyModel::ddr_baseline(PeHardware::MEDAL, 4 * pes);
    let nest_energy = EnergyModel::ddr_baseline(PeHardware::NEST, 4 * pes);
    let mut bars = Vec::new();

    for g in GenomeId::FIVE {
        let w = fm_workload(g, scale);
        let real = run_medal(&w, false, pes);
        let ideal = run_medal(&w, true, pes);
        bars.push(Fig3Bar {
            label: format!("MEDAL FM-seeding {}", g.label()),
            perf_improvement: real.cycles as f64 / ideal.cycles as f64,
            energy_improvement: medal_energy.breakdown(&real).total_pj()
                / medal_energy.breakdown(&ideal).total_pj(),
        });
    }
    for g in GenomeId::FIVE {
        let w = hash_workload(g, scale);
        let real = run_medal(&w, false, pes);
        let ideal = run_medal(&w, true, pes);
        bars.push(Fig3Bar {
            label: format!("MEDAL hash-seeding {}", g.label()),
            perf_improvement: real.cycles as f64 / ideal.cycles as f64,
            energy_improvement: medal_energy.breakdown(&real).total_pj()
                / medal_energy.breakdown(&ideal).total_pj(),
        });
    }
    {
        let w = kmer_workload(scale);
        let real = run_nest(&w, scale.cbf_bytes, false, pes);
        let ideal = run_nest(&w, scale.cbf_bytes, true, pes);
        bars.push(Fig3Bar {
            label: "NEST k-mer counting (human 50x)".into(),
            perf_improvement: real.cycles as f64 / ideal.cycles as f64,
            energy_improvement: nest_energy.breakdown(&real).total_pj()
                / nest_energy.breakdown(&ideal).total_pj(),
        });
    }
    Fig3 { bars }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn communication_bottlenecks_the_baselines() {
        let scale = WorkloadScale::test();
        let fig = run(&scale, 8);
        assert_eq!(fig.bars.len(), 11);
        // Idealised communication must help on average — the paper's
        // motivation (its averages: 4.36x perf, 2.32x energy).
        assert!(
            fig.mean_perf() > 1.05,
            "mean perf improvement {:.3} too small",
            fig.mean_perf()
        );
        let text = fig.render();
        assert!(text.contains("MEDAL FM-seeding Pt"));
        assert!(text.contains("NEST"));
    }
}
