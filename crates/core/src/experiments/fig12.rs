//! Fig. 12: FM-index based DNA seeding — step-by-step performance and
//! energy for BEACON-D (a, b) and BEACON-S (c, d) over the five genomes.

use beacon_genomics::genome::GenomeId;

use crate::config::BeaconVariant;
use crate::energy::{EnergyModel, PeHardware};
use crate::report::fmt_ratio;

use super::common::{fm_workload, run_cpu, run_medal, WorkloadScale};
use super::ladder::{geomean, render_ladders, run_ladder, LadderResult};

/// The figure's data: one ladder per (variant, genome).
#[derive(Debug, Clone)]
pub struct Fig12 {
    /// BEACON-D ladders, one per genome.
    pub d: Vec<LadderResult>,
    /// BEACON-S ladders, one per genome.
    pub s: Vec<LadderResult>,
}

impl Fig12 {
    /// Mean full-design speedup over MEDAL for a variant.
    pub fn mean_speedup_vs_medal(&self, variant: BeaconVariant) -> f64 {
        let ls = match variant {
            BeaconVariant::D => &self.d,
            BeaconVariant::S => &self.s,
        };
        geomean(ls, |l| l.full().speedup_vs_baseline)
    }

    /// Mean full-design speedup over the CPU for a variant.
    pub fn mean_speedup_vs_cpu(&self, variant: BeaconVariant) -> f64 {
        let ls = match variant {
            BeaconVariant::D => &self.d,
            BeaconVariant::S => &self.s,
        };
        geomean(ls, |l| l.full().speedup_vs_cpu)
    }

    /// Renders both halves of the figure.
    pub fn render(&self) -> String {
        let mut out = render_ladders("Fig. 12 — FM-index seeding", &self.d);
        out.push_str(&render_ladders("Fig. 12 — FM-index seeding", &self.s));
        out.push_str(&format!(
            "BEACON-D vs MEDAL (mean): {}   BEACON-D vs CPU (mean): {}\n",
            fmt_ratio(self.mean_speedup_vs_medal(BeaconVariant::D)),
            fmt_ratio(self.mean_speedup_vs_cpu(BeaconVariant::D)),
        ));
        out.push_str(&format!(
            "BEACON-S vs MEDAL (mean): {}   BEACON-S vs CPU (mean): {}\n",
            fmt_ratio(self.mean_speedup_vs_medal(BeaconVariant::S)),
            fmt_ratio(self.mean_speedup_vs_cpu(BeaconVariant::S)),
        ));
        out
    }
}

/// Runs the figure over `genomes` (paper: all five).
pub fn run_genomes(scale: &WorkloadScale, pes: usize, genomes: &[GenomeId]) -> Fig12 {
    let medal_energy_model = EnergyModel::ddr_baseline(PeHardware::MEDAL, 4 * pes);
    let mut d = Vec::new();
    let mut s = Vec::new();
    for &g in genomes {
        let w = fm_workload(g, scale);
        let cpu = run_cpu(&w);
        let medal = run_medal(&w, false, pes);
        let medal_energy = medal_energy_model.breakdown(&medal);
        d.push(run_ladder(
            BeaconVariant::D,
            g.label(),
            &w,
            &cpu,
            &medal,
            &medal_energy,
            pes,
        ));
        s.push(run_ladder(
            BeaconVariant::S,
            g.label(),
            &w,
            &cpu,
            &medal,
            &medal_energy,
            pes,
        ));
    }
    Fig12 { d, s }
}

/// Runs the full five-genome figure.
pub fn run(scale: &WorkloadScale, pes: usize) -> Fig12 {
    run_genomes(scale, pes, &GenomeId::FIVE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fm_ladder_shapes_hold_on_one_genome() {
        let scale = WorkloadScale::test();
        let fig = run_genomes(&scale, 8, &[GenomeId::Pt]);
        let d = &fig.d[0];
        let s = &fig.s[0];

        // Both designs beat the CPU baseline even at the tiny test scale
        // (the latency-dominated regime; bench scale shows the 100x+
        // figures — see EXPERIMENTS.md).
        assert!(
            d.full().speedup_vs_cpu > 2.0,
            "D vs CPU {:.1}",
            d.full().speedup_vs_cpu
        );
        assert!(
            s.full().speedup_vs_cpu > 1.0,
            "S vs CPU {:.1}",
            s.full().speedup_vs_cpu
        );

        // The optimisation ladder improves on vanilla for D (paper: 2.2x).
        assert!(
            d.optimisation_gain() > 1.2,
            "D gain {:.3}",
            d.optimisation_gain()
        );

        // BEACON-D beats MEDAL with all optimisations (paper: 4.36x).
        assert!(
            d.full().speedup_vs_baseline > 1.0,
            "D vs MEDAL {:.3}",
            d.full().speedup_vs_baseline
        );

        // D is at least competitive with S on FM seeding (fine-grained
        // accesses favour CXLG; at the tiny latency-bound test scale the
        // two land within noise of each other).
        assert!(
            d.full().cycles as f64 <= s.full().cycles as f64 * 1.1,
            "D {} should be <= 1.1x S {}",
            d.full().cycles,
            s.full().cycles
        );

        let text = fig.render();
        assert!(text.contains("BEACON-D vs MEDAL"));
    }
}
