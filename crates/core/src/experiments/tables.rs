//! Tables I and II of the paper.

use beacon_dram::params::{DimmGeometry, TimingParams};
use beacon_genomics::trace::AppKind;

use crate::config::{BeaconConfig, BeaconVariant};
use crate::energy::PeHardware;
use crate::report::Table;

/// Renders Table I: the experimental configuration used everywhere.
pub fn table1() -> String {
    let d = BeaconConfig::paper_d(AppKind::FmSeeding);
    let s = BeaconConfig::paper_s(AppKind::FmSeeding);
    let geom = DimmGeometry::ddr4_8gb_x4();
    let t = TimingParams::ddr4_1600_22();

    let mut out = String::new();
    let mut cpu = Table::new("Table I — CPU baseline", &["parameter", "value"]);
    cpu.row(&[
        "processor".into(),
        "2x Xeon E5-2680 v3, 48 threads @ 2.5 GHz".into(),
    ]);
    cpu.row(&["memory".into(), "4x DDR4-1600 channels, 32 MB LLC".into()]);
    out.push_str(&cpu.render());

    let mut base = Table::new("Table I — MEDAL / NEST", &["parameter", "value"]);
    base.row(&["PEs / DIMMs".into(), "512 / 4".into()]);
    base.row(&["memory channels".into(), "2".into()]);
    out.push_str(&base.render());

    let mut beacon = Table::new("Table I — BEACON", &["parameter", "value"]);
    beacon.row(&[
        "PEs / switches / CXLG-DIMMs (D)".into(),
        format!(
            "{} / {} / {}",
            d.total_pes(),
            d.switches,
            d.switches * d.cxlg_per_switch
        ),
    ]);
    beacon.row(&[
        "PEs / switches (S)".into(),
        format!("{} / {}", s.total_pes(), s.switches),
    ]);
    beacon.row(&[
        "unmodified CXL-DIMMs per switch (D/S)".into(),
        format!("{} / {}", d.unmodified_per_switch, s.unmodified_per_switch),
    ]);
    out.push_str(&beacon.render());

    let mut dimm = Table::new("Table I — DIMM", &["parameter", "value"]);
    dimm.row(&[
        "capacity / devices".into(),
        format!("{} GB / 8Gb x4", geom.capacity_bytes() >> 30),
    ]);
    dimm.row(&[
        "ranks / chips per rank".into(),
        format!("{} / {}", geom.ranks, geom.chips_per_rank),
    ]);
    dimm.row(&["bank groups / banks".into(), format!("4 / {}", geom.banks)]);
    dimm.row(&[
        "speed / timing".into(),
        format!("DDR4-1600 / {}-{}-{}", t.cl, t.trcd, t.trp),
    ]);
    out.push_str(&dimm.render());

    let mut pe = Table::new(
        "Table I — PE compute latencies (DRAM cycles)",
        &["application", "latency"],
    );
    for app in [
        AppKind::FmSeeding,
        AppKind::HashSeeding,
        AppKind::KmerCounting,
        AppKind::PreAlignment,
    ] {
        pe.row(&[app.label().into(), app.pe_latency_cycles().to_string()]);
    }
    out.push_str(&pe.render());
    out
}

/// Renders Table II: PE synthesis results at 28 nm.
pub fn table2() -> String {
    let mut t = Table::new(
        "Table II — hardware overhead of the PE in different architectures (28 nm)",
        &[
            "architecture",
            "area (um^2)",
            "dynamic power (mW)",
            "leakage power (uW)",
        ],
    );
    for hw in PeHardware::TABLE2 {
        t.row(&[
            hw.name.into(),
            format!("{:.2}", hw.area_um2),
            format!("{:.2}", hw.dynamic_mw),
            format!("{:.2}", hw.leakage_uw),
        ]);
    }
    t.render()
}

/// Structural facts checked against the paper (used by tests and
/// EXPERIMENTS.md).
pub fn beacon_variants() -> [BeaconVariant; 2] {
    [BeaconVariant::D, BeaconVariant::S]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_mentions_key_parameters() {
        let t = table1();
        assert!(t.contains("512"));
        assert!(t.contains("DDR4-1600"));
        assert!(t.contains("22-22-22"));
        assert!(t.contains("64 GB"));
    }

    #[test]
    fn table2_matches_paper_numbers() {
        let t = table2();
        assert!(t.contains("8941.39"));
        assert!(t.contains("16721.12"));
        assert!(t.contains("14090.23"));
        assert!(t.contains("18.97"));
    }
}
