//! Fig. 16: DNA pre-alignment — performance improvement and energy
//! reduction of the full BEACON-D and BEACON-S designs over the CPU
//! baseline (no hardware baseline exists for this app).

use serde::{Deserialize, Serialize};

use beacon_genomics::genome::GenomeId;

use crate::config::{BeaconVariant, Optimizations};
use crate::energy::EnergyModel;
use crate::report::{fmt_ratio, Table};

use super::common::{prealign_workload, run_beacon, run_cpu, WorkloadScale};

/// One genome's bars.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig16Bar {
    /// Genome label.
    pub genome: String,
    /// BEACON-D speedup over the CPU.
    pub d_speedup: f64,
    /// BEACON-S speedup over the CPU.
    pub s_speedup: f64,
    /// BEACON-D energy reduction over the CPU.
    pub d_energy_reduction: f64,
    /// BEACON-S energy reduction over the CPU.
    pub s_energy_reduction: f64,
}

/// The figure's data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig16 {
    /// One row per genome.
    pub bars: Vec<Fig16Bar>,
}

impl Fig16 {
    /// Renders the figure.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Fig. 16 — DNA pre-alignment vs 48-thread CPU",
            &["genome", "D perf", "S perf", "D energy", "S energy"],
        );
        for b in &self.bars {
            t.row(&[
                b.genome.clone(),
                fmt_ratio(b.d_speedup),
                fmt_ratio(b.s_speedup),
                fmt_ratio(b.d_energy_reduction),
                fmt_ratio(b.s_energy_reduction),
            ]);
        }
        t.render()
    }
}

/// Runs the figure over `genomes`.
pub fn run_genomes(scale: &WorkloadScale, pes: usize, genomes: &[GenomeId]) -> Fig16 {
    let model = EnergyModel::beacon(512.min(4 * pes));
    let mut bars = Vec::new();
    for &g in genomes {
        let w = prealign_workload(g, scale);
        let cpu = run_cpu(&w);
        let cpu_pj = cpu.energy_joules * 1e12;

        let d = run_beacon(
            BeaconVariant::D,
            Optimizations::full(BeaconVariant::D, w.app),
            &w,
            pes,
        );
        let s = run_beacon(
            BeaconVariant::S,
            Optimizations::full(BeaconVariant::S, w.app),
            &w,
            pes,
        );
        let de = model.breakdown(&d);
        let se = model.breakdown(&s);
        bars.push(Fig16Bar {
            genome: g.label().to_owned(),
            d_speedup: cpu.dram_cycles as f64 / d.cycles as f64,
            s_speedup: cpu.dram_cycles as f64 / s.cycles as f64,
            d_energy_reduction: cpu_pj / de.total_pj(),
            s_energy_reduction: cpu_pj / se.total_pj(),
        });
    }
    Fig16 { bars }
}

/// Runs the full five-genome figure.
pub fn run(scale: &WorkloadScale, pes: usize) -> Fig16 {
    run_genomes(scale, pes, &GenomeId::FIVE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prealign_beats_cpu_on_both_designs() {
        let scale = WorkloadScale::test();
        let fig = run_genomes(&scale, 8, &[GenomeId::Nf]);
        let b = &fig.bars[0];
        assert!(b.d_speedup > 1.5, "D speedup {:.1}", b.d_speedup);
        assert!(b.s_speedup > 1.5, "S speedup {:.1}", b.s_speedup);
        assert!(b.d_energy_reduction > 1.0);
        assert!(b.s_energy_reduction > 1.0);
        // D and S are nearly identical for this streaming app
        // (paper: 362x vs 359x).
        let ratio = b.d_speedup / b.s_speedup;
        assert!((0.5..=2.0).contains(&ratio), "D/S ratio {ratio:.2}");
        assert!(fig.render().contains("pre-alignment"));
    }
}
