//! Fig. 14: Hash-index based DNA seeding — step-by-step performance and
//! energy for BEACON-D (a, b) and BEACON-S (c, d) over the five genomes.

use beacon_genomics::genome::GenomeId;

use crate::config::BeaconVariant;
use crate::energy::{EnergyModel, PeHardware};
use crate::report::fmt_ratio;

use super::common::{hash_workload, run_cpu, run_medal, WorkloadScale};
use super::ladder::{geomean, render_ladders, run_ladder, LadderResult};

/// The figure's data.
#[derive(Debug, Clone)]
pub struct Fig14 {
    /// BEACON-D ladders.
    pub d: Vec<LadderResult>,
    /// BEACON-S ladders.
    pub s: Vec<LadderResult>,
}

impl Fig14 {
    /// Mean full-design speedup over MEDAL.
    pub fn mean_speedup_vs_medal(&self, variant: BeaconVariant) -> f64 {
        let ls = match variant {
            BeaconVariant::D => &self.d,
            BeaconVariant::S => &self.s,
        };
        geomean(ls, |l| l.full().speedup_vs_baseline)
    }

    /// Renders the figure.
    pub fn render(&self) -> String {
        let mut out = render_ladders("Fig. 14 — hash-index seeding", &self.d);
        out.push_str(&render_ladders("Fig. 14 — hash-index seeding", &self.s));
        out.push_str(&format!(
            "BEACON-D vs MEDAL (mean): {}   BEACON-S vs MEDAL (mean): {}\n",
            fmt_ratio(self.mean_speedup_vs_medal(BeaconVariant::D)),
            fmt_ratio(self.mean_speedup_vs_medal(BeaconVariant::S)),
        ));
        out
    }
}

/// Runs the figure over `genomes`.
pub fn run_genomes(scale: &WorkloadScale, pes: usize, genomes: &[GenomeId]) -> Fig14 {
    let medal_energy_model = EnergyModel::ddr_baseline(PeHardware::MEDAL, 4 * pes);
    let mut d = Vec::new();
    let mut s = Vec::new();
    for &g in genomes {
        let w = hash_workload(g, scale);
        let cpu = run_cpu(&w);
        let medal = run_medal(&w, false, pes);
        let medal_energy = medal_energy_model.breakdown(&medal);
        d.push(run_ladder(
            BeaconVariant::D,
            g.label(),
            &w,
            &cpu,
            &medal,
            &medal_energy,
            pes,
        ));
        s.push(run_ladder(
            BeaconVariant::S,
            g.label(),
            &w,
            &cpu,
            &medal,
            &medal_energy,
            pes,
        ));
    }
    Fig14 { d, s }
}

/// Runs the full five-genome figure.
pub fn run(scale: &WorkloadScale, pes: usize) -> Fig14 {
    run_genomes(scale, pes, &GenomeId::FIVE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_ladder_shapes_hold() {
        let scale = WorkloadScale::test();
        let fig = run_genomes(&scale, 8, &[GenomeId::Pg]);
        let d = &fig.d[0];
        let s = &fig.s[0];
        assert_eq!(d.points.len(), 4, "no coalescing step for hash seeding");
        assert!(
            d.full().speedup_vs_cpu > 1.5,
            "D {:.2}",
            d.full().speedup_vs_cpu
        );
        assert!(
            s.full().speedup_vs_cpu > 1.0,
            "S {:.2}",
            s.full().speedup_vs_cpu
        );
        // Hash seeding is coarse-grained; D and S should land close
        // (paper: 4.70x vs 4.57x over MEDAL).
        let ratio = d.full().cycles as f64 / s.full().cycles as f64;
        assert!(
            (0.4..=2.5).contains(&ratio),
            "D/S ratio {ratio:.2} implausible"
        );
        assert!(fig.render().contains("hash-index"));
    }
}
