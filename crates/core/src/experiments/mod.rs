//! Experiment drivers: one module per table/figure of the paper.
//!
//! | module | reproduces |
//! |---|---|
//! | [`tables`] | Table I (configuration), Table II (PE synthesis) |
//! | [`fig3`] | Fig. 3 — baselines under idealised communication |
//! | [`fig12`] | Fig. 12 — FM-index seeding ladder (perf + energy) |
//! | [`fig13`] | Fig. 13 — per-chip access balance, multi-chip coalescing |
//! | [`fig14`] | Fig. 14 — hash-index seeding ladder |
//! | [`fig15`] | Fig. 15 — k-mer counting ladder |
//! | [`fig16`] | Fig. 16 — DNA pre-alignment |
//! | [`fig17`] | Fig. 17 — energy breakdown across the ladder |
//! | [`faults`] | RAS fault sweep (not a paper figure; `--faults`) |
//! | [`report`] | journey-attribution bottleneck report (`--report`) |

pub mod common;
pub mod faults;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig3;
pub mod ladder;
pub mod report;
pub mod tables;

pub use common::{
    fm_workload, hash_workload, kmer_workload, prealign_workload, run_beacon, run_cpu, run_medal,
    run_nest, AppWorkload, WorkloadScale,
};
pub use ladder::{geomean, render_ladders, LadderPoint, LadderResult};
