//! Bottleneck report: request-journey attribution over the five genomes.
//!
//! Not a paper figure — the observability companion to the ladders: for
//! each genome the FM-index seeding workload runs on the full BEACON-D
//! design with attribution sampling enabled, and the per-phase latency
//! decomposition, component utilization and most-contended queues are
//! reported (`figures --report`).

use beacon_genomics::genome::GenomeId;
use beacon_sim::journey::{self, Attribution, JourneyRecorder};
use beacon_sim::rng::SimRng;

use crate::config::{BeaconVariant, Optimizations};

use super::common::{fm_workload, run_beacon, WorkloadScale};

/// Sampling period used by the harness: tracks one request in eight —
/// dense enough for stable percentiles at the figure scale, sparse
/// enough to keep the hot path cold.
pub const REPORT_SAMPLE_EVERY: u64 = 8;

/// One genome's attribution report.
#[derive(Debug, Clone)]
pub struct ReportRow {
    /// Genome label as used in the paper's figures.
    pub genome: &'static str,
    /// Run cycles (for scale context in the rendered report).
    pub cycles: u64,
    /// The bottleneck report of the run.
    pub attribution: Attribution,
}

/// The `--report` section's data: one row per genome.
#[derive(Debug, Clone)]
pub struct AttributionReport {
    /// Per-genome rows in [`GenomeId::FIVE`] order.
    pub rows: Vec<ReportRow>,
}

impl AttributionReport {
    /// Renders the human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Bottleneck report — FM-index seeding on BEACON-D (full)\n");
        for row in &self.rows {
            out.push_str(&format!(
                "\n=== {} ({} cycles) ===\n",
                row.genome, row.cycles
            ));
            out.push_str(&row.attribution.render_text());
        }
        out
    }

    /// Renders the machine-readable report: one JSON object keyed by
    /// genome label (hand-rolled — the offline build bans `serde_json`).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"report\":\"journey-attribution\",\"genomes\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"genome\":\"");
            out.push_str(row.genome);
            out.push_str("\",\"cycles\":");
            out.push_str(&row.cycles.to_string());
            out.push_str(",\"attribution\":");
            out.push_str(&row.attribution.render_json());
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Runs the attribution sweep over `genomes` at `sample_every`.
///
/// Installs a fresh [`JourneyRecorder`] around each run (salted from the
/// workload seed via [`SimRng::child`], so the tracked subset is a
/// deterministic function of the scale alone) and restores the previous
/// recorder state afterwards.
pub fn run_genomes(
    scale: &WorkloadScale,
    pes: usize,
    sample_every: u64,
    genomes: &[GenomeId],
) -> AttributionReport {
    let mut rows = Vec::with_capacity(genomes.len());
    for &g in genomes {
        let w = fm_workload(g, scale);
        let salt = SimRng::from_seed(scale.seed).child(0xA77).below(u64::MAX);
        let prev = journey::install(JourneyRecorder::new(sample_every, salt));
        let r = run_beacon(
            BeaconVariant::D,
            Optimizations::full(BeaconVariant::D, w.app),
            &w,
            pes,
        );
        journey::uninstall();
        if let Some(prev) = prev {
            journey::install(prev);
        }
        let attribution = r.attribution.expect("attribution was enabled for this run");
        rows.push(ReportRow {
            genome: g.label(),
            cycles: r.cycles,
            attribution,
        });
    }
    AttributionReport { rows }
}

/// Runs the full five-genome sweep at the harness sampling period.
pub fn run(scale: &WorkloadScale, pes: usize) -> AttributionReport {
    run_genomes(scale, pes, REPORT_SAMPLE_EVERY, &GenomeId::FIVE)
}

#[cfg(test)]
mod tests {
    use beacon_sim::trace::validate_json;

    use super::*;

    #[test]
    fn sweep_produces_populated_reports() {
        let scale = WorkloadScale::test();
        let rep = run_genomes(&scale, 4, 1, &[GenomeId::Pt]);
        assert_eq!(rep.rows.len(), 1);
        let row = &rep.rows[0];
        assert_eq!(row.genome, "Pt");
        let attr = &row.attribution;
        assert!(attr.tracked > 0, "sample_every=1 must track requests");
        assert_eq!(attr.tracked, attr.seen);
        let total = attr
            .phases
            .iter()
            .find(|p| p.phase == "total")
            .expect("total row");
        assert!(total.count > 0);
        assert!(!attr.utilization.is_empty());
        assert!(!attr.queues.is_empty());
        assert!(!attr.classes.is_empty());
    }

    #[test]
    fn attribution_does_not_change_the_digest() {
        let scale = WorkloadScale::test();
        let w = fm_workload(GenomeId::Pt, &scale);
        let plain = run_beacon(
            BeaconVariant::D,
            Optimizations::full(BeaconVariant::D, w.app),
            &w,
            4,
        );
        let rep = run_genomes(&scale, 4, 1, &[GenomeId::Pt]);
        assert!(rep.rows[0].attribution.tracked > 0);
        let attributed = run_beacon(
            BeaconVariant::D,
            Optimizations::full(BeaconVariant::D, w.app),
            &w,
            4,
        );
        assert_eq!(plain.digest(), attributed.digest());
        assert_eq!(plain.diff(&attributed), None);
    }

    #[test]
    fn sampling_is_deterministic_across_runs() {
        let scale = WorkloadScale::test();
        let a = run_genomes(&scale, 4, 2, &[GenomeId::Pt]);
        let b = run_genomes(&scale, 4, 2, &[GenomeId::Pt]);
        assert_eq!(a.rows[0].attribution, b.rows[0].attribution);
    }

    #[test]
    fn json_report_is_well_formed() {
        let scale = WorkloadScale::test();
        let rep = run_genomes(&scale, 4, 1, &[GenomeId::Pt]);
        validate_json(&rep.render_json()).expect("well-formed report JSON");
        let text = rep.render();
        assert!(text.contains("=== Pt"));
        assert!(text.contains("phase"));
    }

    /// The rendered report must satisfy the checked-in schema that
    /// downstream tooling (CI, dashboards) consumes.
    #[test]
    fn json_report_matches_checked_in_schema() {
        use beacon_sim::json::{check_schema, JsonValue};
        let schema_text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../schemas/report.schema.json"
        ))
        .expect("schemas/report.schema.json is checked in");
        let schema = JsonValue::parse(&schema_text).expect("schema parses");
        let scale = WorkloadScale::test();
        let rep = run_genomes(&scale, 4, 1, &[GenomeId::Pt]);
        let doc = JsonValue::parse(&rep.render_json()).expect("report parses");
        check_schema(&doc, &schema).expect("report conforms to the schema");
    }
}
