//! Shared workload construction and system runners for the experiments.
//!
//! Every figure driver builds an [`AppWorkload`] (traces + region
//! descriptions) and pushes it through the CPU roofline, the MEDAL/NEST
//! baselines and the BEACON systems at chosen optimisation points.

use beacon_accel::cpu_model::{CpuModel, CpuRun, WorkloadSummary};
use beacon_accel::medal::{Medal, MedalConfig, RegionSpec};
use beacon_accel::nest::{combine, Nest, NestConfig};
use beacon_accel::result::RunResult;
use beacon_genomics::genome::{Genome, GenomeId};
use beacon_genomics::hash_index::HashIndex;
use beacon_genomics::kmer::KmerCounter;
use beacon_genomics::prealign::PreAlignFilter;
use beacon_genomics::prelude::FmIndex;
use beacon_genomics::reads::ReadSampler;
use beacon_genomics::trace::{Access, AppKind, Region, Step, TaskTrace};
use beacon_sim::rng::SimRng;

use crate::config::{BeaconConfig, BeaconVariant, Optimizations};
use crate::mmf::{build_layout, LayoutSpec};
use crate::system::BeaconSystem;

/// Size knobs of one experiment campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadScale {
    /// Synthetic length of the Pt genome; the other four scale by their
    /// real relative sizes.
    pub pt_genome_len: usize,
    /// Reads per genome for the seeding/pre-alignment apps.
    pub reads: usize,
    /// Read length in bases.
    pub read_len: usize,
    /// Per-base sequencing error rate.
    pub error_rate: f64,
    /// k for k-mer counting.
    pub kmer_k: usize,
    /// Reads for the k-mer counting app.
    pub kmer_reads: usize,
    /// Counting-Bloom-filter size in bytes.
    pub cbf_bytes: u64,
    /// Master seed.
    pub seed: u64,
}

impl WorkloadScale {
    /// Tiny scale for unit/integration tests (sub-second runs).
    pub fn test() -> Self {
        WorkloadScale {
            pt_genome_len: 4_000,
            reads: 12,
            read_len: 32,
            error_rate: 0.01,
            kmer_k: 24,
            kmer_reads: 8,
            cbf_bytes: 64 * 1024,
            seed: 42,
        }
    }

    /// The scale used by the `figures` harness and benches.
    pub fn bench() -> Self {
        WorkloadScale {
            pt_genome_len: 60_000,
            reads: 96,
            read_len: 64,
            error_rate: 0.01,
            kmer_k: 28,
            kmer_reads: 64,
            cbf_bytes: 512 * 1024,
            seed: 42,
        }
    }
}

/// One application's ready-to-run workload.
#[derive(Debug, Clone)]
pub struct AppWorkload {
    /// The application.
    pub app: AppKind,
    /// Per-task traces.
    pub traces: Vec<TaskTrace>,
    /// Region descriptions for the BEACON memory manager.
    pub layout: Vec<LayoutSpec>,
    /// Region descriptions for the MEDAL/NEST baselines.
    pub medal: Vec<RegionSpec>,
}

impl AppWorkload {
    /// The CPU roofline summary of this workload.
    pub fn cpu_summary(&self) -> WorkloadSummary {
        WorkloadSummary::from_traces(&self.traces)
    }
}

/// Builds the FM-index seeding workload for one genome.
pub fn fm_workload(genome_id: GenomeId, scale: &WorkloadScale) -> AppWorkload {
    let len = genome_id.scaled_len(scale.pt_genome_len);
    let genome = Genome::synthetic(genome_id, len, scale.seed);
    let index = FmIndex::build(genome.sequence());
    let mut sampler = ReadSampler::new(&genome, scale.read_len, scale.error_rate, scale.seed ^ 1);
    let traces: Vec<TaskTrace> = (0..scale.reads)
        .map(|_| index.trace_search(sampler.next_read().bases()))
        .collect();
    let bytes = index.index_bytes();
    AppWorkload {
        app: AppKind::FmSeeding,
        traces,
        layout: vec![LayoutSpec::shared_random(Region::FmIndex, bytes)],
        medal: vec![RegionSpec::random(Region::FmIndex, bytes)],
    }
}

/// Builds the hash-index seeding workload for one genome.
pub fn hash_workload(genome_id: GenomeId, scale: &WorkloadScale) -> AppWorkload {
    let len = genome_id.scaled_len(scale.pt_genome_len);
    let genome = Genome::synthetic(genome_id, len, scale.seed);
    let bucket_bits = ((len as f64).log2().ceil() as u32).clamp(10, 22);
    let index = HashIndex::build(genome.sequence(), 12, bucket_bits);
    let mut sampler = ReadSampler::new(&genome, scale.read_len, scale.error_rate, scale.seed ^ 2);
    let traces: Vec<TaskTrace> = (0..scale.reads)
        .map(|_| index.trace_seed_read(sampler.next_read().bases(), 64))
        .collect();
    AppWorkload {
        app: AppKind::HashSeeding,
        traces,
        layout: vec![
            LayoutSpec::shared_random(Region::HashTable, index.header_bytes()),
            LayoutSpec::shared_spatial(Region::CandidateLists, index.candidate_bytes()),
        ],
        medal: vec![
            RegionSpec::random(Region::HashTable, index.header_bytes()),
            RegionSpec::spatial(Region::CandidateLists, index.candidate_bytes()),
        ],
    }
}

/// Builds the k-mer counting workload (human-like genome, paper §VI-A).
pub fn kmer_workload(scale: &WorkloadScale) -> AppWorkload {
    let len = GenomeId::Human.scaled_len(scale.pt_genome_len);
    let genome = Genome::synthetic(GenomeId::Human, len, scale.seed);
    let counter = KmerCounter::new(scale.kmer_k, scale.cbf_bytes as usize, 3, scale.seed ^ 3);
    let mut sampler = ReadSampler::new(&genome, scale.read_len, scale.error_rate, scale.seed ^ 4);
    let traces: Vec<TaskTrace> = (0..scale.kmer_reads)
        .map(|_| counter.trace_read(&sampler.next_read()))
        .collect();
    AppWorkload {
        app: AppKind::KmerCounting,
        traces,
        layout: vec![LayoutSpec::shared_random_writable(
            Region::Bloom,
            scale.cbf_bytes,
        )],
        medal: vec![RegionSpec::random(Region::Bloom, scale.cbf_bytes)],
    }
}

/// Builds the DNA pre-alignment workload for one genome: each read is
/// filtered against its true location plus one decoy candidate.
pub fn prealign_workload(genome_id: GenomeId, scale: &WorkloadScale) -> AppWorkload {
    let len = genome_id.scaled_len(scale.pt_genome_len);
    let genome = Genome::synthetic(genome_id, len, scale.seed);
    let filter = PreAlignFilter::new(5);
    let mut sampler = ReadSampler::new(&genome, scale.read_len, scale.error_rate, scale.seed ^ 5);
    let mut rng = SimRng::from_seed(scale.seed ^ 6);
    let mut traces = Vec::with_capacity(scale.reads * 2);
    for _ in 0..scale.reads {
        let read = sampler.next_read();
        traces.push(filter.trace_filter(scale.read_len, read.origin()));
        let decoy = rng.index(len - scale.read_len);
        traces.push(filter.trace_filter(scale.read_len, decoy));
    }
    let ref_bytes = (len as u64).div_ceil(4);
    AppWorkload {
        app: AppKind::PreAlignment,
        traces,
        layout: vec![
            LayoutSpec::shared_spatial(Region::Reference, ref_bytes),
            LayoutSpec::partitioned(Region::ReadBuf, (scale.reads * scale.read_len / 4) as u64),
        ],
        medal: vec![
            RegionSpec::spatial(Region::Reference, ref_bytes),
            RegionSpec::spatial(Region::ReadBuf, (scale.reads * scale.read_len / 4) as u64),
        ],
    }
}

/// Runs BEACON at an optimisation point. Small-PE variant used by tests;
/// experiments scale PEs via `pes_per_module`.
pub fn run_beacon(
    variant: BeaconVariant,
    opts: Optimizations,
    workload: &AppWorkload,
    pes_per_module: usize,
) -> RunResult {
    let mut cfg = BeaconConfig::paper(variant, workload.app).with_opts(opts);
    cfg.pes_per_module = pes_per_module;
    cfg.refresh_enabled = false;
    let layout = build_layout(&cfg, &workload.layout);
    let mut sys = BeaconSystem::new(cfg, layout);
    if workload.app == AppKind::KmerCounting
        && variant == BeaconVariant::S
        && !opts.single_pass_kmer
    {
        // Without the single-pass optimisation, BEACON-S inherits NEST's
        // multi-pass strategy: two passes over the input plus the filter
        // merge (paper §IV-D).
        let r1 = {
            let mut s1 = BeaconSystem::new(cfg, build_layout(&cfg, &workload.layout));
            s1.submit_round_robin(workload.traces.iter().cloned());
            s1.run()
        };
        let merge = {
            let mut sm = BeaconSystem::new(cfg, build_layout(&cfg, &workload.layout));
            let cbf_bytes: u64 = workload
                .layout
                .iter()
                .find(|s| s.region == Region::Bloom)
                .map(|s| s.bytes)
                .unwrap_or(0);
            sm.submit_round_robin(bulk_read_traces(Region::Bloom, cbf_bytes, 4096));
            sm.run()
        };
        sys.submit_round_robin(workload.traces.iter().cloned());
        let r3 = sys.run();
        return combine(vec![r1, merge, r3], workload.traces.len());
    }
    sys.submit_round_robin(workload.traces.iter().cloned());
    sys.run()
}

/// Bulk sequential read traces covering `bytes` of `region` (used for the
/// multi-pass filter merge).
pub fn bulk_read_traces(region: Region, bytes: u64, chunk: u64) -> Vec<TaskTrace> {
    let n_chunks = bytes.div_ceil(chunk);
    (0..n_chunks)
        .map(|c| {
            let base = c * chunk;
            let mut accesses = Vec::new();
            let mut off = 0;
            while off < chunk && base + off < bytes {
                let take = 64.min(bytes - (base + off)) as u32;
                accesses.push(Access::read(region, base + off, take));
                off += 64;
            }
            TaskTrace::new(AppKind::KmerCounting, vec![Step::posted(accesses)])
        })
        .collect()
}

/// Runs the MEDAL baseline on a seeding/pre-alignment workload.
pub fn run_medal(workload: &AppWorkload, ideal: bool, pes_per_dimm: usize) -> RunResult {
    let mut cfg = MedalConfig::paper(workload.app.pe_latency_cycles());
    cfg.pes_per_dimm = pes_per_dimm;
    cfg.refresh_enabled = false;
    if ideal {
        cfg = cfg.idealized();
    }
    let map = cfg.region_map(&workload.medal);
    let mut medal = Medal::with_shared_map(cfg, map);
    medal.submit_round_robin(workload.traces.iter().cloned());
    medal.run()
}

/// Runs the NEST baseline (multi-pass) on the k-mer workload.
pub fn run_nest(workload: &AppWorkload, cbf_bytes: u64, ideal: bool, pes: usize) -> RunResult {
    let mut cfg = NestConfig::paper(cbf_bytes);
    cfg.hw.pes_per_dimm = pes;
    cfg.hw.refresh_enabled = false;
    if ideal {
        cfg = cfg.idealized();
    }
    Nest::new(cfg).run_multipass(&workload.traces)
}

/// Runs the CPU roofline baseline. For k-mer counting the software
/// baseline (BFCounter) is single-pass.
pub fn run_cpu(workload: &AppWorkload) -> CpuRun {
    CpuModel::default().run(&workload.cpu_summary())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_builders_produce_nonempty_traces() {
        let s = WorkloadScale::test();
        for w in [
            fm_workload(GenomeId::Pt, &s),
            hash_workload(GenomeId::Pg, &s),
            kmer_workload(&s),
            prealign_workload(GenomeId::Ss, &s),
        ] {
            assert!(!w.traces.is_empty(), "{:?}", w.app);
            assert!(!w.layout.is_empty());
            assert!(w.traces.iter().all(|t| t.app == w.app));
        }
    }

    #[test]
    fn prealign_has_two_candidates_per_read() {
        let s = WorkloadScale::test();
        let w = prealign_workload(GenomeId::Am, &s);
        assert_eq!(w.traces.len(), 2 * s.reads);
    }

    #[test]
    fn bulk_traces_cover_all_bytes() {
        let traces = bulk_read_traces(Region::Bloom, 10_000, 2048);
        let total: u64 = traces.iter().map(TaskTrace::total_bytes).sum();
        assert_eq!(total, 10_000);
    }

    #[test]
    fn cpu_baseline_runs() {
        let s = WorkloadScale::test();
        let w = fm_workload(GenomeId::Pt, &s);
        let cpu = run_cpu(&w);
        assert!(cpu.seconds > 0.0);
        assert!(cpu.dram_cycles > 0);
    }

    #[test]
    fn beacon_and_medal_run_the_same_workload() {
        let s = WorkloadScale::test();
        let w = fm_workload(GenomeId::Pt, &s);
        let m = run_medal(&w, false, 8);
        let d = run_beacon(
            BeaconVariant::D,
            Optimizations::full(BeaconVariant::D, w.app),
            &w,
            8,
        );
        assert_eq!(m.tasks, w.traces.len());
        assert_eq!(d.tasks, w.traces.len());
    }
}
