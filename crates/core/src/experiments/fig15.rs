//! Fig. 15: k-mer counting — step-by-step performance and energy for
//! BEACON-D (a, b) and BEACON-S (c, d) against NEST.

use crate::config::BeaconVariant;
use crate::energy::{EnergyModel, PeHardware};
use crate::report::fmt_ratio;

use super::common::{kmer_workload, run_cpu, run_nest, WorkloadScale};
use super::ladder::{render_ladders, run_ladder, LadderResult};

/// The figure's data (one dataset: human-like genome at 50x).
#[derive(Debug, Clone)]
pub struct Fig15 {
    /// BEACON-D ladder.
    pub d: LadderResult,
    /// BEACON-S ladder (ends with single-pass k-mer counting).
    pub s: LadderResult,
}

impl Fig15 {
    /// Renders the figure.
    pub fn render(&self) -> String {
        let mut out = render_ladders("Fig. 15 — k-mer counting", std::slice::from_ref(&self.d));
        out.push_str(&render_ladders(
            "Fig. 15 — k-mer counting",
            std::slice::from_ref(&self.s),
        ));
        out.push_str(&format!(
            "BEACON-D vs NEST: {}   BEACON-S vs NEST: {}\n",
            fmt_ratio(self.d.full().speedup_vs_baseline),
            fmt_ratio(self.s.full().speedup_vs_baseline),
        ));
        out
    }
}

/// Runs the figure.
pub fn run(scale: &WorkloadScale, pes: usize) -> Fig15 {
    let w = kmer_workload(scale);
    let cpu = run_cpu(&w);
    let nest = run_nest(&w, scale.cbf_bytes, false, pes);
    let nest_energy = EnergyModel::ddr_baseline(PeHardware::NEST, 4 * pes).breakdown(&nest);

    let d = run_ladder(
        BeaconVariant::D,
        "human 50x",
        &w,
        &cpu,
        &nest,
        &nest_energy,
        pes,
    );
    let s = run_ladder(
        BeaconVariant::S,
        "human 50x",
        &w,
        &cpu,
        &nest,
        &nest_energy,
        pes,
    );
    Fig15 { d, s }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmer_ladder_shapes_hold() {
        let scale = WorkloadScale::test();
        let fig = run(&scale, 8);

        // The S ladder ends with single-pass k-mer counting.
        assert_eq!(fig.s.points.last().unwrap().label, "+single-pass k-mer");
        assert_eq!(fig.d.points.len(), 4);

        // Single-pass beats the multi-pass point before it (paper: 1.48x).
        let pts = &fig.s.points;
        let before = &pts[pts.len() - 2];
        let after = pts.last().unwrap();
        assert!(
            after.cycles < before.cycles,
            "single-pass ({}) must beat multi-pass ({})",
            after.cycles,
            before.cycles
        );

        // Both designs beat the CPU; full designs beat NEST.
        assert!(
            fig.d.full().speedup_vs_cpu > 1.0,
            "D {:.2}",
            fig.d.full().speedup_vs_cpu
        );
        assert!(
            fig.s.full().speedup_vs_cpu > 1.0,
            "S {:.2}",
            fig.s.full().speedup_vs_cpu
        );
        assert!(
            fig.s.full().speedup_vs_baseline > 1.0,
            "S vs NEST {:.2}",
            fig.s.full().speedup_vs_baseline
        );

        // Atomic RMWs actually flowed through the system.
        assert!(fig.render().contains("k-mer"));
    }
}
