//! The Memory Management Framework (paper §IV-C).
//!
//! Decides, per optimisation point, where every workload region lives in
//! the pool and how it is interleaved:
//!
//! * **vanilla** — locality-blind: every region page-striped across every
//!   DIMM in the pool, rank-level interleave (what a host OS would do),
//! * **placement/mapping on** — the paper's architecture- and data-aware
//!   scheme (Fig. 10): fine-grained random regions move onto the
//!   CXLG-DIMMs with chip-level interleave (BEACON-D) or are fine-striped
//!   across the pool (BEACON-S, whose unmodified DIMMs only support
//!   rank-level access); spatially-local regions are placed row-by-row;
//!   partitioned regions (per-module inputs) become local to the module
//!   that consumes them.

use serde::{Deserialize, Serialize};

use beacon_accel::translate::{Placement, RegionMap};
use beacon_cxl::message::NodeId;
use beacon_dram::address::Interleave;
use beacon_dram::module::AccessMode;
use beacon_dram::params::DimmGeometry;
use beacon_genomics::trace::Region;

use crate::config::{BeaconConfig, BeaconVariant};

/// A workload region to place.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayoutSpec {
    /// The region.
    pub region: Region,
    /// Total size in bytes.
    pub bytes: u64,
    /// Whether it has spatial locality (row-major candidate).
    pub spatial: bool,
    /// Whether each compute module accesses a private shard (inputs)
    /// that should be placed near that module.
    pub partitioned: bool,
    /// Whether the region is read-only (indexes, references). Read-only
    /// shared regions can be *replicated* per switch by the placement
    /// optimisation, eliminating cross-switch traffic — writable regions
    /// (the counting Bloom filter) must stay single-copy.
    pub read_only: bool,
}

impl LayoutSpec {
    /// A read-only fine-grained random-access region (indexes).
    pub fn shared_random(region: Region, bytes: u64) -> Self {
        LayoutSpec {
            region,
            bytes,
            spatial: false,
            partitioned: false,
            read_only: true,
        }
    }

    /// A writable fine-grained random-access region (counting filters).
    pub fn shared_random_writable(region: Region, bytes: u64) -> Self {
        LayoutSpec {
            region,
            bytes,
            spatial: false,
            partitioned: false,
            read_only: false,
        }
    }

    /// A read-only spatially-local region (candidate lists, reference).
    pub fn shared_spatial(region: Region, bytes: u64) -> Self {
        LayoutSpec {
            region,
            bytes,
            spatial: true,
            partitioned: false,
            read_only: true,
        }
    }

    /// A per-module input region (read staging).
    pub fn partitioned(region: Region, bytes: u64) -> Self {
        LayoutSpec {
            region,
            bytes,
            spatial: true,
            partitioned: true,
            read_only: true,
        }
    }
}

/// The result of memory allocation: per-compute-module views plus the
/// access mode the CXLG-DIMMs are configured in.
#[derive(Debug, Clone)]
pub struct MemoryLayout {
    /// One region map per compute module.
    pub maps: Vec<RegionMap>,
    /// Chip-select mode of the CXLG-DIMMs.
    pub cxlg_mode: AccessMode,
    /// The pool allocator holding this layout's grants; callers can keep
    /// allocating (and de-allocating) against the same pool.
    pub allocator: crate::allocator::PoolAllocator,
}

/// Row window used for fine-grained random regions: blocks scatter over
/// this many rows so that random accesses are row misses, as they would
/// be in the full-size system (see `Placement::sparse_window`).
pub const SPARSE_ROW_WINDOW: u64 = 64;

/// The CXLG-DIMM chip-select mode implied by a configuration's
/// optimisation point. Pure function of `cfg.opts` — snapshot resume
/// recomputes the mode from the restored configuration instead of
/// serialising it.
pub fn cxlg_mode_for(cfg: &BeaconConfig) -> AccessMode {
    if !cfg.opts.placement_mapping {
        AccessMode::RankLockstep
    } else {
        match cfg.opts.multi_chip_coalescing {
            Some(c) => AccessMode::Coalesced { chips: c },
            None => AccessMode::PerChip,
        }
    }
}

/// The MMF's graceful-degradation plan for a whole-DIMM failure: a
/// second map epoch with every placement re-homed off the dead DIMM,
/// plus the accounting of what that costs.
///
/// Built *before* the run (the failure cycle is part of the fault
/// schedule, so the recovery layout is deterministic); the system flips
/// from epoch 0 to epoch 1 the first time it translates an access at or
/// after [`RemapPlan::at`]. Requests already in flight against the old
/// map are nak'd by the dead DIMM and retried under the new one.
#[derive(Debug, Clone)]
pub struct RemapPlan {
    /// Cycle of the failure (epoch boundary).
    pub at: beacon_sim::cycle::Cycle,
    /// The node that dies.
    pub dead: NodeId,
    /// Epoch-1 maps: epoch 0 with `dead` re-homed onto survivors.
    pub maps: Vec<RegionMap>,
    /// Pool capacity lost with the DIMM, in bytes.
    pub lost_capacity_bytes: u64,
    /// Live bytes that must migrate to surviving DIMMs.
    pub moved_bytes: u64,
    /// Estimated migration cost: moved bytes pushed over one DIMM link.
    pub remap_cost_cycles: u64,
    /// Placements (across all module maps) that referenced the dead
    /// DIMM and were re-homed.
    pub remap_regions: u64,
}

/// Plans graceful degradation for the hard failure described by
/// `faults` (see [`RemapPlan`]). Returns `None` when the schedule has
/// no DIMM failure.
///
/// Survivors are chosen same-switch first — re-homing onto siblings of
/// the dead DIMM keeps the placement optimisation's locality story
/// intact — falling back to every surviving unmodified DIMM in the
/// pool when the dead DIMM had no same-switch siblings.
pub fn plan_dimm_loss(
    cfg: &BeaconConfig,
    layout: &MemoryLayout,
    faults: &crate::config::FaultsConfig,
) -> Option<RemapPlan> {
    if faults.dimm_fail_at == 0 {
        return None;
    }
    let dead = NodeId::dimm(faults.dimm_fail_switch, faults.dimm_fail_slot);
    let mut survivors: Vec<NodeId> = (cfg.cxlg_per_switch..cfg.slots_per_switch())
        .map(|d| NodeId::dimm(faults.dimm_fail_switch, d))
        .filter(|n| *n != dead)
        .collect();
    if survivors.is_empty() {
        survivors = cfg
            .unmodified_nodes()
            .into_iter()
            .filter(|n| *n != dead)
            .collect();
    }
    assert!(
        !survivors.is_empty(),
        "pool must outlive a single DIMM failure"
    );

    let mut allocator = layout.allocator.clone();
    let (free, used) = allocator
        .exclude(dead)
        .expect("failing DIMM must be a pool node");
    let mut maps = layout.maps.clone();
    let mut remap_regions = 0;
    for map in &mut maps {
        remap_regions += map.remap_node(dead, &survivors);
    }
    // Migration cost: every live byte of the dead DIMM re-read from a
    // replica / re-built and pushed over one survivor's link.
    let remap_cost_cycles = (used as f64 / cfg.dimm_link.bytes_per_cycle).ceil() as u64;
    Some(RemapPlan {
        at: beacon_sim::cycle::Cycle::new(faults.dimm_fail_at),
        dead,
        maps,
        lost_capacity_bytes: free + used,
        moved_bytes: used,
        remap_cost_cycles,
        remap_regions,
    })
}

/// Allocation front-end over [`crate::allocator::PoolAllocator`]:
/// because `row` is the slowest dimension of every interleave, disjoint
/// row grants guarantee physically disjoint regions even across
/// different interleaves.
#[derive(Debug)]
struct Cursors(crate::allocator::PoolAllocator);

impl Cursors {
    /// Reserves `per_node` bytes worth of rows (times `window` for
    /// sparse regions) on each of `homes`, returning the common base row.
    ///
    /// # Panics
    /// Panics when the pool cannot satisfy the request — at layout-build
    /// time that is a configuration error, not a runtime condition.
    fn reserve(
        &mut self,
        _geometry: &DimmGeometry,
        homes: &[NodeId],
        per_node: u64,
        window: u64,
    ) -> u64 {
        self.0
            .allocate(homes, per_node, window)
            .expect("pool must fit the workload's regions")
            .base_row
    }
}

/// Builds the layout for a configuration and workload.
///
/// # Panics
/// Panics when `specs` is empty or the configuration is invalid.
pub fn build_layout(cfg: &BeaconConfig, specs: &[LayoutSpec]) -> MemoryLayout {
    assert!(!specs.is_empty(), "no regions to place");
    cfg.validate().expect("invalid configuration");
    let geometry = cfg.geometry;
    let n_modules = cfg.compute_modules() as usize;

    let cxlg_mode = cxlg_mode_for(cfg);
    let cxlg_groups = cxlg_mode.group_count(&geometry);

    let mut cursors = Cursors(crate::allocator::PoolAllocator::new(
        geometry,
        &cfg.all_dimm_nodes(),
    ));
    let mut maps: Vec<RegionMap> = (0..n_modules).map(|_| RegionMap::new(geometry)).collect();

    // Shared regions. Vanilla keeps one pool-wide copy; the placement
    // optimisation replicates read-only regions per switch (eliminating
    // cross-switch traffic) while writable regions stay single-copy.
    for spec in specs.iter().filter(|s| !s.partitioned) {
        if !cfg.opts.placement_mapping {
            // Vanilla: page-striped over the whole pool, rank-level.
            let homes = cfg.all_dimm_nodes();
            let per_node = per_node_bytes(spec.bytes, cfg.vanilla_stripe_bytes, homes.len());
            let window = if spec.spatial { 1 } else { SPARSE_ROW_WINDOW };
            let base_row = cursors.reserve(&geometry, &homes, per_node, window);
            let placement = Placement::striped(
                homes,
                cfg.vanilla_stripe_bytes,
                0,
                Interleave::RankLevel { line_bytes: 64 },
            )
            .with_row_offset(base_row)
            .with_sparse_rows(window);
            for map in &mut maps {
                map.place(spec.region, placement.clone());
            }
            continue;
        }

        if spec.read_only {
            // Replicate per switch; each module uses its switch's copy.
            let mut per_switch: Vec<Placement> = Vec::with_capacity(cfg.switches as usize);
            for sw in 0..cfg.switches {
                per_switch.push(switch_local_placement(
                    cfg,
                    spec,
                    sw,
                    cxlg_groups,
                    &geometry,
                    &mut cursors,
                ));
            }
            for (mi, map) in maps.iter_mut().enumerate() {
                let sw = module_switch(cfg, mi as u32) as usize;
                map.place(spec.region, per_switch[sw].clone());
            }
        } else {
            // Writable: one pool-wide copy.
            let placement = match cfg.variant {
                BeaconVariant::D => {
                    let homes = cfg.cxlg_nodes();
                    let per_node = per_node_bytes(spec.bytes, cfg.opt_stripe_bytes, homes.len());
                    let base_row = cursors.reserve(&geometry, &homes, per_node, SPARSE_ROW_WINDOW);
                    Placement::striped(
                        homes,
                        cfg.opt_stripe_bytes,
                        0,
                        Interleave::ChipLevel {
                            block_bytes: 32,
                            groups: cxlg_groups,
                        },
                    )
                    .with_row_offset(base_row)
                    .with_sparse_rows(SPARSE_ROW_WINDOW)
                }
                BeaconVariant::S => {
                    let homes = cfg.all_dimm_nodes();
                    let per_node = per_node_bytes(spec.bytes, 64, homes.len());
                    let base_row = cursors.reserve(&geometry, &homes, per_node, SPARSE_ROW_WINDOW);
                    Placement::striped(homes, 64, 0, Interleave::RankLevel { line_bytes: 64 })
                        .with_row_offset(base_row)
                        .with_sparse_rows(SPARSE_ROW_WINDOW)
                }
            };
            for map in &mut maps {
                map.place(spec.region, placement.clone());
            }
        }
    }

    // Partitioned regions: near the consuming module when placement is
    // on, pool-striped otherwise.
    for spec in specs.iter().filter(|s| s.partitioned) {
        if !cfg.opts.placement_mapping {
            let homes = cfg.all_dimm_nodes();
            let per_node = per_node_bytes(spec.bytes, cfg.vanilla_stripe_bytes, homes.len());
            let base_row = cursors.reserve(&geometry, &homes, per_node, 1);
            let placement = Placement::striped(
                homes,
                cfg.vanilla_stripe_bytes,
                0,
                Interleave::RankLevel { line_bytes: 64 },
            )
            .with_row_offset(base_row);
            for map in &mut maps {
                map.place(spec.region, placement.clone());
            }
        } else {
            for (mi, map) in maps.iter_mut().enumerate() {
                let homes = module_local_nodes(cfg, mi as u32);
                let share = spec.bytes / n_modules as u64 + 1;
                let stripe = row_bytes(&geometry, 1);
                let per_node = per_node_bytes(share, stripe, homes.len());
                let base_row = cursors.reserve(&geometry, &homes, per_node, 1);
                let interleave = match cfg.variant {
                    // A CXLG-DIMM streams its input from itself.
                    BeaconVariant::D => Interleave::RowMajor {
                        groups: cxlg_groups,
                    },
                    BeaconVariant::S => Interleave::RowMajor { groups: 1 },
                };
                map.place(
                    spec.region,
                    Placement::striped(homes, stripe, 0, interleave).with_row_offset(base_row),
                );
            }
        }
    }

    MemoryLayout {
        maps,
        cxlg_mode,
        allocator: cursors.0,
    }
}

/// One row reservation [`build_layout`] performs: `per_node_bytes`
/// (scaled by the sparse-row `window`) on every node of `homes` at a
/// common base row.
///
/// The admission controller of the pool job service replays these
/// requests against its *persistent* allocator, so service-level
/// capacity accounting uses exactly the arithmetic of the real
/// placement — a job admitted by the service can never fail its
/// round's [`build_layout`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowRequest {
    /// Home DIMMs of the reservation.
    pub homes: Vec<NodeId>,
    /// Bytes reserved per home.
    pub per_node_bytes: u64,
    /// Sparse-row window multiplier (see [`SPARSE_ROW_WINDOW`]).
    pub window: u64,
}

impl RowRequest {
    /// Rows this request consumes on each of its homes.
    pub fn rows(&self, allocator: &crate::allocator::PoolAllocator) -> u64 {
        allocator.rows_needed(self.per_node_bytes, self.window)
    }
}

/// The exact sequence of row reservations [`build_layout`] makes for
/// `specs` under `cfg` — same branches, same homes, same per-node byte
/// and window arithmetic, in the same order. Kept in lock-step with
/// [`build_layout`] by the `reservation_plan_matches_build_layout`
/// test, which replays the plan against a fresh allocator and demands
/// the free lists come out identical to the built layout's.
pub fn reservation_plan(cfg: &BeaconConfig, specs: &[LayoutSpec]) -> Vec<RowRequest> {
    let geometry = cfg.geometry;
    let n_modules = cfg.compute_modules() as usize;
    let mut plan = Vec::new();
    let mut push = |homes: Vec<NodeId>, per_node_bytes: u64, window: u64| {
        plan.push(RowRequest {
            homes,
            per_node_bytes,
            window,
        });
    };

    for spec in specs.iter().filter(|s| !s.partitioned) {
        if !cfg.opts.placement_mapping {
            let homes = cfg.all_dimm_nodes();
            let per_node = per_node_bytes(spec.bytes, cfg.vanilla_stripe_bytes, homes.len());
            let window = if spec.spatial { 1 } else { SPARSE_ROW_WINDOW };
            push(homes, per_node, window);
            continue;
        }
        if spec.read_only {
            for sw in 0..cfg.switches {
                match (cfg.variant, spec.spatial) {
                    (BeaconVariant::D, false) => {
                        let homes: Vec<NodeId> = (0..cfg.cxlg_per_switch)
                            .map(|d| NodeId::dimm(sw, d))
                            .collect();
                        let per_node =
                            per_node_bytes(spec.bytes, cfg.opt_stripe_bytes, homes.len());
                        push(homes, per_node, SPARSE_ROW_WINDOW);
                    }
                    (BeaconVariant::D, true) => {
                        let homes: Vec<NodeId> = (cfg.cxlg_per_switch..cfg.slots_per_switch())
                            .map(|d| NodeId::dimm(sw, d))
                            .collect();
                        let stripe = row_bytes(&geometry, 1);
                        let per_node = per_node_bytes(spec.bytes, stripe, homes.len());
                        push(homes, per_node, 1);
                    }
                    (BeaconVariant::S, false) => {
                        let homes: Vec<NodeId> = (0..cfg.slots_per_switch())
                            .map(|d| NodeId::dimm(sw, d))
                            .collect();
                        let per_node = per_node_bytes(spec.bytes, 64, homes.len());
                        push(homes, per_node, SPARSE_ROW_WINDOW);
                    }
                    (BeaconVariant::S, true) => {
                        let homes: Vec<NodeId> = (0..cfg.slots_per_switch())
                            .map(|d| NodeId::dimm(sw, d))
                            .collect();
                        let stripe = row_bytes(&geometry, 1);
                        let per_node = per_node_bytes(spec.bytes, stripe, homes.len());
                        push(homes, per_node, 1);
                    }
                }
            }
        } else {
            match cfg.variant {
                BeaconVariant::D => {
                    let homes = cfg.cxlg_nodes();
                    let per_node = per_node_bytes(spec.bytes, cfg.opt_stripe_bytes, homes.len());
                    push(homes, per_node, SPARSE_ROW_WINDOW);
                }
                BeaconVariant::S => {
                    let homes = cfg.all_dimm_nodes();
                    let per_node = per_node_bytes(spec.bytes, 64, homes.len());
                    push(homes, per_node, SPARSE_ROW_WINDOW);
                }
            }
        }
    }

    for spec in specs.iter().filter(|s| s.partitioned) {
        if !cfg.opts.placement_mapping {
            let homes = cfg.all_dimm_nodes();
            let per_node = per_node_bytes(spec.bytes, cfg.vanilla_stripe_bytes, homes.len());
            push(homes, per_node, 1);
        } else {
            for mi in 0..n_modules {
                let homes = module_local_nodes(cfg, mi as u32);
                let share = spec.bytes / n_modules as u64 + 1;
                let stripe = row_bytes(&geometry, 1);
                let per_node = per_node_bytes(share, stripe, homes.len());
                push(homes, per_node, 1);
            }
        }
    }

    plan
}

/// The nodes "near" compute module `mi`: itself for BEACON-D, the
/// switch's unmodified DIMMs for BEACON-S.
fn module_local_nodes(cfg: &BeaconConfig, mi: u32) -> Vec<NodeId> {
    match cfg.variant {
        BeaconVariant::D => {
            let s = mi / cfg.cxlg_per_switch;
            let d = mi % cfg.cxlg_per_switch;
            vec![NodeId::dimm(s, d)]
        }
        BeaconVariant::S => (cfg.cxlg_per_switch..cfg.slots_per_switch())
            .map(|d| NodeId::dimm(mi, d))
            .collect(),
    }
}

/// The switch a compute module lives on.
fn module_switch(cfg: &BeaconConfig, mi: u32) -> u32 {
    match cfg.variant {
        BeaconVariant::D => mi / cfg.cxlg_per_switch,
        BeaconVariant::S => mi,
    }
}

/// Builds the per-switch replica placement of a read-only shared region.
fn switch_local_placement(
    cfg: &BeaconConfig,
    spec: &LayoutSpec,
    sw: u32,
    cxlg_groups: u32,
    geometry: &DimmGeometry,
    cursors: &mut Cursors,
) -> Placement {
    match (cfg.variant, spec.spatial) {
        // D, random: this switch's CXLG-DIMMs, chip-level interleave.
        (BeaconVariant::D, false) => {
            let homes: Vec<NodeId> = (0..cfg.cxlg_per_switch)
                .map(|d| NodeId::dimm(sw, d))
                .collect();
            let per_node = per_node_bytes(spec.bytes, cfg.opt_stripe_bytes, homes.len());
            let base_row = cursors.reserve(geometry, &homes, per_node, SPARSE_ROW_WINDOW);
            Placement::striped(
                homes,
                cfg.opt_stripe_bytes,
                0,
                Interleave::ChipLevel {
                    block_bytes: 32,
                    groups: cxlg_groups,
                },
            )
            .with_row_offset(base_row)
            .with_sparse_rows(SPARSE_ROW_WINDOW)
        }
        // D, spatial: this switch's unmodified DIMMs, row-major.
        (BeaconVariant::D, true) => {
            let homes: Vec<NodeId> = (cfg.cxlg_per_switch..cfg.slots_per_switch())
                .map(|d| NodeId::dimm(sw, d))
                .collect();
            let stripe = row_bytes(geometry, 1);
            let per_node = per_node_bytes(spec.bytes, stripe, homes.len());
            let base_row = cursors.reserve(geometry, &homes, per_node, 1);
            Placement::striped(homes, stripe, 0, Interleave::RowMajor { groups: 1 })
                .with_row_offset(base_row)
        }
        // S, random: this switch's DIMMs, fine rank-level striping.
        (BeaconVariant::S, false) => {
            let homes: Vec<NodeId> = (0..cfg.slots_per_switch())
                .map(|d| NodeId::dimm(sw, d))
                .collect();
            let per_node = per_node_bytes(spec.bytes, 64, homes.len());
            let base_row = cursors.reserve(geometry, &homes, per_node, SPARSE_ROW_WINDOW);
            Placement::striped(homes, 64, 0, Interleave::RankLevel { line_bytes: 64 })
                .with_row_offset(base_row)
                .with_sparse_rows(SPARSE_ROW_WINDOW)
        }
        // S, spatial: this switch's DIMMs, row-major.
        (BeaconVariant::S, true) => {
            let homes: Vec<NodeId> = (0..cfg.slots_per_switch())
                .map(|d| NodeId::dimm(sw, d))
                .collect();
            let stripe = row_bytes(geometry, 1);
            let per_node = per_node_bytes(spec.bytes, stripe, homes.len());
            let base_row = cursors.reserve(geometry, &homes, per_node, 1);
            Placement::striped(homes, stripe, 0, Interleave::RowMajor { groups: 1 })
                .with_row_offset(base_row)
        }
    }
}

fn per_node_bytes(total: u64, stripe: u64, homes: usize) -> u64 {
    total.div_ceil(stripe * homes as u64) * stripe
}

fn row_bytes(geometry: &DimmGeometry, groups: u32) -> u64 {
    let chips_per_group = geometry.chips_per_rank / groups;
    (chips_per_group * geometry.burst_bytes_per_chip()) as u64 * geometry.cols_per_row() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Optimizations;
    use beacon_genomics::trace::{Access, AppKind};

    fn specs() -> Vec<LayoutSpec> {
        vec![
            LayoutSpec::shared_random(Region::FmIndex, 1 << 20),
            LayoutSpec::shared_spatial(Region::CandidateLists, 1 << 20),
            LayoutSpec::partitioned(Region::ReadBuf, 1 << 16),
        ]
    }

    #[test]
    fn reservation_plan_matches_build_layout() {
        // Every placement branch: D/S × placement on/off, with a
        // writable region thrown in. Replaying the plan on a fresh
        // allocator must reproduce the built layout's allocator
        // exactly — this is the lock-step guarantee the pool service's
        // admission controller relies on.
        let mut all = specs();
        all.push(LayoutSpec::shared_random_writable(
            Region::HashTable,
            1 << 20,
        ));
        for (variant, placement) in [
            (BeaconVariant::D, false),
            (BeaconVariant::D, true),
            (BeaconVariant::S, false),
            (BeaconVariant::S, true),
        ] {
            let mut cfg = match variant {
                BeaconVariant::D => BeaconConfig::paper_d(AppKind::FmSeeding),
                BeaconVariant::S => BeaconConfig::paper_s(AppKind::FmSeeding),
            };
            if placement {
                cfg = cfg.with_opts(Optimizations::full(variant, AppKind::FmSeeding));
            }
            let layout = build_layout(&cfg, &all);
            let mut replay =
                crate::allocator::PoolAllocator::new(cfg.geometry, &cfg.all_dimm_nodes());
            for req in reservation_plan(&cfg, &all) {
                replay
                    .allocate(&req.homes, req.per_node_bytes, req.window)
                    .expect("plan fits wherever build_layout fit");
            }
            assert_eq!(
                replay, layout.allocator,
                "plan diverged for {variant:?} placement={placement}"
            );
        }
    }

    #[test]
    fn vanilla_stripes_everything_over_the_pool() {
        let cfg = BeaconConfig::paper_d(AppKind::FmSeeding);
        let layout = build_layout(&cfg, &specs());
        assert_eq!(layout.cxlg_mode, AccessMode::RankLockstep);
        assert_eq!(layout.maps.len(), 4);
        let p = layout.maps[0].placement(Region::FmIndex).unwrap();
        assert_eq!(p.homes.len(), 8);
    }

    #[test]
    fn placement_moves_random_regions_to_cxlg() {
        let cfg = BeaconConfig::paper_d(AppKind::FmSeeding)
            .with_opts(Optimizations::full(BeaconVariant::D, AppKind::FmSeeding));
        let layout = build_layout(&cfg, &specs());
        assert_eq!(layout.cxlg_mode, AccessMode::Coalesced { chips: 4 });
        // Read-only random regions are replicated per switch: module 0
        // (switch 0) uses switch 0's CXLG-DIMMs.
        let p = layout.maps[0].placement(Region::FmIndex).unwrap();
        assert!(p.homes.iter().all(|n| n.switch() == Some(0)));
        assert_eq!(p.homes.len(), cfg.cxlg_per_switch as usize);
        let p3 = layout.maps[3].placement(Region::FmIndex).unwrap();
        assert!(p3.homes.iter().all(|n| n.switch() == Some(1)));
        // Spatial data went to the switch's unmodified DIMMs.
        let c = layout.maps[0].placement(Region::CandidateLists).unwrap();
        assert!(c
            .homes
            .iter()
            .all(|n| matches!(n, NodeId::Dimm { slot, .. } if !cfg.slot_is_cxlg(*slot))));
    }

    #[test]
    fn partitioned_regions_are_module_local_under_placement() {
        let cfg = BeaconConfig::paper_d(AppKind::FmSeeding)
            .with_opts(Optimizations::full(BeaconVariant::D, AppKind::FmSeeding));
        let layout = build_layout(&cfg, &specs());
        for (mi, map) in layout.maps.iter().enumerate() {
            let p = map.placement(Region::ReadBuf).unwrap();
            assert_eq!(p.homes, module_local_nodes(&cfg, mi as u32));
        }
    }

    #[test]
    fn s_variant_keeps_pool_striping_for_random_regions() {
        let cfg = BeaconConfig::paper_s(AppKind::FmSeeding)
            .with_opts(Optimizations::full(BeaconVariant::S, AppKind::FmSeeding));
        let layout = build_layout(&cfg, &specs());
        assert_eq!(layout.cxlg_mode, AccessMode::PerChip); // irrelevant: no CXLG
                                                           // Read-only: replicated per switch over that switch's 4 DIMMs.
        let p = layout.maps[0].placement(Region::FmIndex).unwrap();
        assert_eq!(p.homes.len(), 4);
        assert!(p.homes.iter().all(|n| n.switch() == Some(0)));
        assert_eq!(p.stripe_bytes, 64);
        // S inputs live on the module's own switch.
        let r0 = layout.maps[0].placement(Region::ReadBuf).unwrap();
        let r1 = layout.maps[1].placement(Region::ReadBuf).unwrap();
        assert!(r0.homes.iter().all(|n| n.switch() == Some(0)));
        assert!(r1.homes.iter().all(|n| n.switch() == Some(1)));
    }

    #[test]
    fn regions_do_not_overlap_per_node() {
        // Translate a sample of offsets in each region and check physical
        // (node, coord) pairs never collide between regions.
        let cfg = BeaconConfig::paper_d(AppKind::FmSeeding)
            .with_opts(Optimizations::full(BeaconVariant::D, AppKind::FmSeeding));
        let layout = build_layout(&cfg, &specs());
        let map = &layout.maps[0];
        let mut seen = std::collections::HashSet::new();
        for region in [Region::FmIndex, Region::CandidateLists, Region::ReadBuf] {
            for i in 0..512u64 {
                let a = Access::read(region, i * 96, 32);
                for seg in map.translate(&a) {
                    assert!(
                        seen.insert((region, seg.node, seg.coord)),
                        "collision in {region:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn coalescing_sets_group_mode() {
        let mut opts = Optimizations::full(BeaconVariant::D, AppKind::FmSeeding);
        opts.multi_chip_coalescing = Some(4);
        let cfg = BeaconConfig::paper_d(AppKind::FmSeeding).with_opts(opts);
        let layout = build_layout(&cfg, &specs());
        assert_eq!(layout.cxlg_mode, AccessMode::Coalesced { chips: 4 });
        let p = layout.maps[0].placement(Region::FmIndex).unwrap();
        match p.interleave {
            Interleave::ChipLevel { groups, .. } => assert_eq!(groups, 4),
            other => panic!("unexpected interleave {other:?}"),
        }
    }

    #[test]
    fn dimm_loss_plan_rehomes_onto_siblings() {
        let cfg = BeaconConfig::paper_d(AppKind::FmSeeding);
        let layout = build_layout(&cfg, &specs());
        let fc = crate::config::FaultsConfig::dimm_loss(1, 0, 2, 5_000);
        let plan = plan_dimm_loss(&cfg, &layout, &fc).expect("failure scheduled");
        let dead = NodeId::dimm(0, 2);
        assert_eq!(plan.dead, dead);
        assert_eq!(plan.at, beacon_sim::cycle::Cycle::new(5_000));
        // Vanilla stripes every region over the whole pool, so every
        // module map referenced the dead DIMM.
        assert_eq!(plan.remap_regions as usize, 3 * layout.maps.len());
        assert!(plan.lost_capacity_bytes > 0);
        assert!(plan.moved_bytes > 0, "regions lived on the dead DIMM");
        assert!(plan.remap_cost_cycles > 0);
        for map in &plan.maps {
            for region in [Region::FmIndex, Region::CandidateLists, Region::ReadBuf] {
                let p = map.placement(region).unwrap();
                assert!(
                    !p.homes.contains(&dead),
                    "{region:?} still homes the dead DIMM"
                );
                // Same-switch survivor: the other unmodified slot.
                assert!(p.homes.contains(&NodeId::dimm(0, 3)));
            }
        }
        // No failure scheduled => no plan.
        let quiet = crate::config::FaultsConfig::quiet(1);
        assert!(plan_dimm_loss(&cfg, &layout, &quiet).is_none());
    }

    #[test]
    #[should_panic(expected = "no regions")]
    fn empty_specs_panic() {
        let cfg = BeaconConfig::paper_d(AppKind::FmSeeding);
        let _ = build_layout(&cfg, &[]);
    }
}
