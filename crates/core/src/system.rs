//! The BEACON system model: BEACON-D and BEACON-S (paper Fig. 4/5).
//!
//! One [`BeaconSystem`] instantiates the full pool: CXL switches with
//! per-port links and an internal switch-bus, CXLG-DIMMs (BEACON-D's
//! compute modules: NDP engine + fine-grained DIMM), unmodified
//! CXL-DIMMs (the memory-expansion pool, rank-lock-step devices with a
//! standard CXL.mem interface), the in-switch logic (BEACON-S's compute
//! modules, and the switch MC + Atomic Engine in both variants) and a
//! host root complex that forwards cross-switch and host-bias traffic.
//!
//! The optimisation toggles of [`crate::config::Optimizations`] map to
//! mechanisms:
//!
//! * `data_packing` → [`DataPacker`]s on every NDP sender,
//! * `mem_access_opt` → requests to unmodified DIMMs carry
//!   `via_host = false` (device bias) instead of detouring off the host,
//! * `placement_mapping` / `multi_chip_coalescing` → consumed by
//!   [`crate::mmf::build_layout`] before the system is built,
//! * `ideal_comm` → every link, bus and forwarding latency becomes free.

use std::collections::{BTreeMap, VecDeque};

use std::fmt::Write as _;

use beacon_sim::component::{Probe, Tick};
use beacon_sim::cycle::{Cycle, Duration};
use beacon_sim::engine::{dense_fastpath_enabled, Engine, RunOutcome};
use beacon_sim::faults::{stream, FaultSchedule};
use beacon_sim::journey::{self, ComponentUtil, JGate, JStamp, Phase, QueueAcc, QueueStat};
use beacon_sim::snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};
use beacon_sim::stats::Stats;
use beacon_sim::trace::{self, TraceCategory, TraceEvent, TraceLevel};

use beacon_accel::pending::PendingTable;
use beacon_accel::result::RunResult;
use beacon_accel::server::{DimmServer, ServiceOp};
use beacon_accel::task::{AccessToken, IssuedAccess, TaskEngine};
use beacon_accel::translate::RegionMap;
use beacon_cxl::bundle::Bundle;
use beacon_cxl::message::{Message, MsgKind, NodeId};
use beacon_cxl::packer::DataPacker;
use beacon_cxl::switch::{Switch, SwitchConfig};
use beacon_dram::address::DramCoord;
use beacon_dram::module::{AccessMode, DimmConfig};
use beacon_dram::params::TimingParams;
use beacon_genomics::trace::{AccessKind, TaskTrace};

use crate::config::{BeaconConfig, BeaconVariant};
use crate::mmf::{MemoryLayout, RemapPlan};

/// Service ids with this bit serve a remote request at a CXLG/unmodified
/// DIMM (vs completing a local pending access).
const SERVE_BIT: u64 = 1 << 60;
/// Message tags with this bit are switch-logic atomic phase operations.
const LOGIC_BIT: u64 = 1 << 59;
/// Times a nak'd access is re-issued before it is dropped (the
/// accelerator-task equivalent of an MCE: the task continues, the loss
/// is reported in the [`beacon_accel::result::DegradedRun`] section).
const MAX_ACCESS_RETRIES: u32 = 8;

/// Requester-side RAS state, armed only when the run has a fault
/// schedule: every in-flight logical access by pending id, so a nak can
/// re-issue it (under the current map epoch) instead of wedging its task.
#[derive(Debug, Default)]
struct RasState {
    inflight: BTreeMap<u64, (IssuedAccess, u32)>,
}

/// Removes a completed access from the retry table (no-op while RAS is
/// unarmed).
#[inline]
fn ras_done(ras: &mut Option<Box<RasState>>, pid: u64) {
    if let Some(r) = ras {
        r.inflight.remove(&pid);
    }
}

/// A scheduled whole-DIMM hard failure on one switch.
#[derive(Debug, Clone, Copy)]
struct SlotFault {
    slot: usize,
    at: Cycle,
    done: bool,
}

#[derive(Debug, Clone, Copy)]
struct ServeEntry {
    requester: NodeId,
    orig_tag: u64,
    kind: MsgKind,
    bytes: u32,
    via_host: bool,
    in_use: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AtomicPhase {
    Read,
    Write,
}

#[derive(Debug, Clone, Copy)]
struct LogicServe {
    requester: NodeId,
    orig_tag: u64,
    coord: DramCoord,
    bytes: u32,
    dimm: NodeId,
    phase: AtomicPhase,
    via_host: bool,
    in_use: bool,
    /// Journey stamp of a tracked atomic parked in the serve table while
    /// the logic runs its read/ALU/write phases (all one `Serve` span).
    jny: Option<JStamp>,
}

/// Sender-side egress: optional packer plus a retry buffer for
/// back-pressured bundles.
#[derive(Debug)]
struct Egress {
    packer: Option<DataPacker>,
    queue: VecDeque<Bundle>,
}

impl Egress {
    fn new(packing: bool, flush_age: u64) -> Self {
        Egress {
            packer: packing.then(|| DataPacker::new(flush_age)),
            queue: VecDeque::new(),
        }
    }

    fn push(&mut self, msg: Message, now: Cycle) {
        match &mut self.packer {
            Some(p) => p.push(msg, now),
            None => self.queue.push_back(Bundle::single(msg)),
        }
    }

    /// Moves packer output into the retry queue.
    fn collect(&mut self, now: Cycle) {
        if let Some(p) = &mut self.packer {
            p.tick(now);
            while let Some(b) = p.pop_ready() {
                self.queue.push_back(b);
            }
        }
    }

    fn is_idle(&self) -> bool {
        self.queue.is_empty()
            && self
                .packer
                .as_ref()
                .map(DataPacker::is_idle)
                .unwrap_or(true)
    }

    /// Sender-side event horizon: immediate while bundles wait in the
    /// retry queue (they are re-offered to the fabric every cycle),
    /// otherwise the packer's next age-flush deadline.
    fn next_event(&self) -> Cycle {
        if !self.queue.is_empty() {
            return Cycle::ZERO;
        }
        self.packer
            .as_ref()
            .map(DataPacker::next_event)
            .unwrap_or(Cycle::NEVER)
    }

    fn stats(&self) -> Option<&Stats> {
        self.packer.as_ref().map(DataPacker::stats)
    }
}

#[derive(Debug)]
struct CxlgModule {
    node: NodeId,
    engine: TaskEngine,
    server: DimmServer,
    map_idx: usize,
    pending: PendingTable,
    serve: Vec<ServeEntry>,
    free_serve: Vec<u32>,
    egress: Egress,
    /// Nak retry state; `None` on a pristine machine.
    ras: Option<Box<RasState>>,
    /// Precomputed class label for attribution rollups (no per-request
    /// formatting on the hot path).
    jny_label: Box<str>,
}

#[derive(Debug)]
struct UnmodDimm {
    node: NodeId,
    server: DimmServer,
    serve: Vec<ServeEntry>,
    free_serve: Vec<u32>,
    /// Standard CXL.mem interface: no packer.
    egress: Egress,
}

#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // few instances, arena-like ownership
enum DimmSlot {
    Cxlg(CxlgModule),
    Unmodified(UnmodDimm),
}

#[derive(Debug)]
struct LogicNode {
    /// BEACON-S compute engine.
    engine: Option<TaskEngine>,
    map_idx: usize,
    pending: PendingTable,
    serve: Vec<LogicServe>,
    free_serve: Vec<u32>,
    egress: Egress,
    /// Atomic-ALU results waiting to start their write phase.
    alu_stage: VecDeque<(Cycle, u32)>,
    stats: Stats,
    /// Nak retry state; `None` on a pristine machine.
    ras: Option<Box<RasState>>,
    /// Precomputed class label for attribution rollups.
    jny_label: Box<str>,
}

/// One switch subtree: the fabric, its in-switch logic and the DIMMs
/// behind it. Everything under a `SwitchNode` only talks to the rest of
/// the pool through the uplink, which is what makes it an independently
/// advanceable shard for [`crate::parallel`].
/// A same-switch RMW short-circuited into the logic serve table:
/// (pending id, DRAM coordinate, payload bytes, requesting node,
/// journey stamp when the access is tracked).
type LocalRmw = (u64, DramCoord, u32, NodeId, Option<JStamp>);

#[derive(Debug)]
pub(crate) struct SwitchNode {
    index: usize,
    fabric: Switch,
    logic: LogicNode,
    dimms: Vec<DimmSlot>,
    /// Per-tick scratch buffers, reused so the steady-state drive loop
    /// performs no heap allocation. Always drained back to empty before
    /// the driver returns.
    issued_scratch: Vec<IssuedAccess>,
    rmw_scratch: Vec<LocalRmw>,
    done_scratch: Vec<(u64, Cycle)>,
    resp_scratch: Vec<Message>,
    comp_scratch: Vec<u64>,
    poison_scratch: Vec<u64>,
    jny_scratch: Vec<(u64, JStamp)>,
    /// Queue-depth integrals for the attribution report. Observed once
    /// per executed tick — depth only changes inside [`tick_cycle`], so
    /// the plateau accounting stays exact under fast-forwarding. Plain
    /// fields, never digested.
    q_staged: QueueAcc,
    q_inbox: QueueAcc,
    q_backlog: Vec<QueueAcc>,
    /// Memoized endpoint term of [`SwitchNode::slot_horizon`] per slot
    /// (engine ∧ server ∧ egress next-event). A slot's endpoints mutate
    /// only inside [`SwitchNode::drive_slot`] (which clears the flag),
    /// at task submission and on injected DIMM failure — every other
    /// cycle the cached value is exact, so the dense-fast-path probe
    /// pays one indexed load plus the live port-arrival term instead of
    /// three component horizon walks (DESIGN.md §15.5).
    slot_h: Vec<Cycle>,
    slot_h_valid: Vec<bool>,
    /// Run-local sampling gate: refreshed from the installed recorder at
    /// run start, consulted (without thread-local traffic) on every
    /// access this subtree issues, summed into the report at collect.
    /// Plain field, never digested.
    jgate: Option<JGate>,
    /// Scheduled hard failure of one of this switch's DIMMs. A pending
    /// failure is a time-driven fault: `subtree_next_event` surfaces it
    /// so fast-forwarding cannot jump over the death.
    ras_fail: Option<SlotFault>,
}

/// Read-only system context threaded through the per-switch drivers so
/// a [`SwitchNode`] can advance without borrowing the whole
/// [`BeaconSystem`].
#[derive(Clone, Copy)]
pub(crate) struct SysCtx<'a> {
    pub(crate) cfg: &'a BeaconConfig,
    pub(crate) maps: &'a [RegionMap],
    pub(crate) rmw_alu_cycles: u64,
    /// Post-failure map epoch, when a DIMM loss is scheduled.
    pub(crate) remap: Option<&'a RemapPlan>,
}

impl<'a> SysCtx<'a> {
    /// The region maps in force at `now`: epoch 0 until the scheduled
    /// DIMM failure, the re-homed epoch-1 maps from the failure cycle
    /// on. One branch on the pristine path.
    #[inline]
    pub(crate) fn maps_at(&self, now: Cycle) -> &'a [RegionMap] {
        match self.remap {
            Some(r) if now >= r.at => &r.maps,
            _ => self.maps,
        }
    }
}

/// The assembled BEACON-D / BEACON-S system.
#[derive(Debug)]
pub struct BeaconSystem {
    pub(crate) cfg: BeaconConfig,
    pub(crate) maps: Vec<RegionMap>,
    pub(crate) switches: Vec<SwitchNode>,
    pub(crate) host_stage: VecDeque<(Cycle, Bundle)>,
    /// Reusable buffer for back-pressured host-stage entries.
    host_scratch: VecDeque<(Cycle, Bundle)>,
    /// Host-stage queue-depth integral (attribution only, not digested).
    q_host: QueueAcc,
    pub(crate) finished_at: Cycle,
    pub(crate) rmw_alu_cycles: u64,
    /// Precomputed graceful-degradation plan for the scheduled DIMM
    /// failure (see [`crate::mmf::plan_dimm_loss`]).
    pub(crate) remap: Option<Box<RemapPlan>>,
    /// The next cycle this system will simulate: zero on a fresh build,
    /// the capture cycle on a restored checkpoint, the finish cycle
    /// after a drained run. Every engine the system spawns starts here.
    pub(crate) clock: Cycle,
    /// The pool allocator holding this system's layout grants, retained
    /// so checkpoints can serialise it and resume can rebuild the
    /// degradation plan from identical pre-run state.
    pub(crate) allocator: crate::allocator::PoolAllocator,
}

impl BeaconSystem {
    /// Builds the system from a configuration and the memory layout
    /// produced by [`crate::mmf::build_layout`].
    ///
    /// # Panics
    /// Panics when the configuration is invalid or the layout's map
    /// count does not match the number of compute modules.
    pub fn new(cfg: BeaconConfig, layout: MemoryLayout) -> Self {
        cfg.validate().expect("invalid configuration");
        assert_eq!(
            layout.maps.len(),
            cfg.compute_modules() as usize,
            "layout must have one map per compute module"
        );

        let mut switch_cfg = SwitchConfig {
            index: 0,
            dimm_slots: cfg.slots_per_switch(),
            dimm_link: cfg.dimm_link,
            uplink: cfg.uplink,
            bus_bytes_per_cycle: cfg.switch_bus_bytes_per_cycle,
            forward_latency: cfg.switch_latency,
            atomic_intercept_from: cfg.cxlg_per_switch,
        };
        if cfg.opts.ideal_comm {
            switch_cfg = switch_cfg.idealized();
            switch_cfg.atomic_intercept_from = cfg.cxlg_per_switch;
        }

        let mut cxlg_cfg = DimmConfig::paper_ndp(layout.cxlg_mode);
        cxlg_cfg.geometry = cfg.geometry;
        cxlg_cfg.refresh_enabled = cfg.refresh_enabled;
        cxlg_cfg.queue_depth = cfg.dimm_queue_depth;
        // Unmodified CXL-DIMMs are commodity memory-expander devices: the
        // CXL buffer chip drives each rank over its own internal channel,
        // so they also get per-rank command issue (but no chip-select
        // customisation and no chained fine-grained commands -- those are
        // the CXLG modifications).
        let mut unmod_cfg = DimmConfig::paper(AccessMode::RankLockstep);
        unmod_cfg.per_rank_cmd_bus = true;
        unmod_cfg.geometry = cfg.geometry;
        unmod_cfg.refresh_enabled = cfg.refresh_enabled;
        unmod_cfg.queue_depth = cfg.dimm_queue_depth;

        let packing = cfg.opts.data_packing;
        let flush_age = cfg.packer_flush_age;

        let mut switches: Vec<SwitchNode> = (0..cfg.switches)
            .map(|s| {
                let mut sc = switch_cfg;
                sc.index = s;
                let dimms = (0..cfg.slots_per_switch())
                    .map(|slot| {
                        let node = NodeId::dimm(s, slot);
                        if cfg.slot_is_cxlg(slot) {
                            let map_idx = (s * cfg.cxlg_per_switch + slot) as usize;
                            DimmSlot::Cxlg(CxlgModule {
                                node,
                                engine: TaskEngine::new(cfg.pes_per_module, cfg.pe_latency),
                                server: DimmServer::new(cxlg_cfg),
                                map_idx,
                                pending: PendingTable::new(),
                                serve: Vec::new(),
                                free_serve: Vec::new(),
                                egress: Egress::new(packing, flush_age),
                                ras: None,
                                jny_label: format!("sw{s}.dimm{slot}").into_boxed_str(),
                            })
                        } else {
                            DimmSlot::Unmodified(UnmodDimm {
                                node,
                                server: DimmServer::new(unmod_cfg),
                                serve: Vec::new(),
                                free_serve: Vec::new(),
                                egress: Egress::new(false, flush_age),
                            })
                        }
                    })
                    .collect();
                let logic_engine = match cfg.variant {
                    BeaconVariant::S => Some(TaskEngine::new(cfg.pes_per_module, cfg.pe_latency)),
                    BeaconVariant::D => None,
                };
                SwitchNode {
                    index: s as usize,
                    fabric: Switch::new(sc),
                    logic: LogicNode {
                        engine: logic_engine,
                        map_idx: s as usize,
                        pending: PendingTable::new(),
                        serve: Vec::new(),
                        free_serve: Vec::new(),
                        egress: Egress::new(packing, flush_age),
                        alu_stage: VecDeque::new(),
                        stats: Stats::new(),
                        ras: None,
                        jny_label: format!("sw{s}.logic").into_boxed_str(),
                    },
                    dimms,
                    issued_scratch: Vec::new(),
                    rmw_scratch: Vec::new(),
                    done_scratch: Vec::new(),
                    resp_scratch: Vec::new(),
                    comp_scratch: Vec::new(),
                    poison_scratch: Vec::new(),
                    jny_scratch: Vec::new(),
                    q_staged: QueueAcc::default(),
                    q_inbox: QueueAcc::default(),
                    q_backlog: vec![QueueAcc::default(); cfg.slots_per_switch() as usize],
                    slot_h: vec![Cycle::ZERO; cfg.slots_per_switch() as usize],
                    slot_h_valid: vec![false; cfg.slots_per_switch() as usize],
                    jgate: journey::gate(),
                    ras_fail: None,
                }
            })
            .collect();

        // Label every component's trace track with its place in the
        // topology so exported traces read `sw0.dimm2.dram` rather than a
        // pile of identical `dram` rows.
        for (s, sw) in switches.iter_mut().enumerate() {
            if let Some(e) = sw.logic.engine.as_mut() {
                e.set_trace_id(format!("sw{s}.logic.engine"));
            }
            if let Some(p) = sw.logic.egress.packer.as_mut() {
                p.set_trace_id(format!("sw{s}.logic.packer"));
            }
            for (slot, d) in sw.dimms.iter_mut().enumerate() {
                match d {
                    DimmSlot::Cxlg(m) => {
                        m.engine.set_trace_id(format!("sw{s}.dimm{slot}.engine"));
                        m.server.set_trace_id(format!("sw{s}.dimm{slot}.dram"));
                        if let Some(p) = m.egress.packer.as_mut() {
                            p.set_trace_id(format!("sw{s}.dimm{slot}.packer"));
                        }
                    }
                    DimmSlot::Unmodified(u) => {
                        u.server.set_trace_id(format!("sw{s}.dimm{slot}.dram"));
                    }
                }
            }
        }

        // Arm the fault schedule. Every stream is derived from the one
        // seed and a stable component coordinate, so the schedule is
        // identical across thread counts and with skipping on or off.
        if let Some(fc) = &cfg.faults {
            let sched = FaultSchedule::new(fc.seed);
            let h = fc.horizon;
            for (s, sw) in switches.iter_mut().enumerate() {
                let si = s as u32;
                let crc = |port: usize, dir: u32| {
                    sched.stream(
                        stream::id(stream::LINK_CRC, si, port as u32, dir),
                        fc.link_crc_per_mcycle,
                        h,
                    )
                };
                sw.fabric.install_crc_faults(
                    Switch::UPLINK,
                    crc(Switch::UPLINK, 0),
                    crc(Switch::UPLINK, 1),
                );
                for slot in 0..cfg.slots_per_switch() {
                    let port = sw.fabric.dimm_port(slot);
                    sw.fabric
                        .install_crc_faults(port, crc(port, 0), crc(port, 1));
                    sw.fabric.install_port_flaps(
                        port,
                        sched.stream(
                            stream::id(stream::PORT_FLAP, si, port as u32, 0),
                            fc.port_flap_per_mcycle,
                            h,
                        ),
                        fc.flap_down_cycles,
                    );
                }
                // Uncorrectable errors hit the unmodified expansion
                // DIMMs; CXLG modules scrub their local accesses.
                for (slot, d) in sw.dimms.iter_mut().enumerate() {
                    if let DimmSlot::Unmodified(u) = d {
                        u.server.set_ue_faults(sched.stream(
                            stream::id(stream::DIMM_UE, si, slot as u32, 0),
                            fc.dimm_ue_per_mcycle,
                            h,
                        ));
                    }
                }
                // Arm requester-side retry tables.
                sw.logic.ras = Some(Box::default());
                for d in sw.dimms.iter_mut() {
                    if let DimmSlot::Cxlg(m) = d {
                        m.ras = Some(Box::default());
                    }
                }
            }
            if fc.dimm_fail_at > 0 {
                switches[fc.dimm_fail_switch as usize].ras_fail = Some(SlotFault {
                    slot: fc.dimm_fail_slot as usize,
                    at: Cycle::new(fc.dimm_fail_at),
                    done: false,
                });
            }
        }
        let remap = cfg
            .faults
            .as_ref()
            .and_then(|fc| crate::mmf::plan_dimm_loss(&cfg, &layout, fc))
            .map(Box::new);

        BeaconSystem {
            cfg,
            maps: layout.maps,
            switches,
            host_stage: VecDeque::new(),
            host_scratch: VecDeque::new(),
            q_host: QueueAcc::default(),
            finished_at: Cycle::ZERO,
            rmw_alu_cycles: 4,
            remap,
            clock: Cycle::ZERO,
            allocator: layout.allocator,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &BeaconConfig {
        &self.cfg
    }

    /// Submits a task to compute module `module`.
    pub fn submit_to(&mut self, module: usize, trace: TaskTrace) {
        match self.cfg.variant {
            BeaconVariant::D => {
                let s = module / self.cfg.cxlg_per_switch as usize;
                let d = module % self.cfg.cxlg_per_switch as usize;
                match &mut self.switches[s].dimms[d] {
                    DimmSlot::Cxlg(m) => {
                        // Multi-purpose PEs: pick the engine (and its
                        // latency) from the task's application.
                        m.engine.submit_for_app(trace);
                    }
                    DimmSlot::Unmodified(_) => unreachable!("slot layout broken"),
                }
                self.switches[s].slot_h_valid[d] = false;
            }
            BeaconVariant::S => {
                self.switches[module]
                    .logic
                    .engine
                    .as_mut()
                    .expect("S has logic engines")
                    .submit_for_app(trace);
            }
        }
    }

    /// Distributes tasks round-robin over the compute modules (the host's
    /// task dispatch through the framework interface).
    pub fn submit_round_robin<I: IntoIterator<Item = TaskTrace>>(&mut self, traces: I) {
        let n = self.cfg.compute_modules() as usize;
        for (i, t) in traces.into_iter().enumerate() {
            self.submit_to(i % n, t);
        }
    }

    /// Runs until the workload drains and returns the measurements.
    ///
    /// With an ambient thread count above one (see
    /// [`crate::parallel::set_threads`]) this routes through the
    /// bit-identical epoch-parallel engine; the default is the
    /// sequential reference below.
    ///
    /// # Panics
    /// Panics when the model deadlocks (cycle limit).
    pub fn run(&mut self) -> RunResult {
        let threads = crate::parallel::threads();
        if threads > 1 {
            return self.run_parallel(threads);
        }
        self.refresh_journey_gates();
        let mut engine = Engine::starting_at(self.clock);
        let outcome = crate::obs::drive(&mut engine, self);
        self.finished_at = outcome.finished_at();
        self.clock = self.finished_at;
        self.collect()
    }

    /// Runs the sequential engine up to cycle `to` (an epoch boundary
    /// for checkpointing) or until the workload drains, whichever comes
    /// first. Returns `true` when the run drained. The system's state
    /// at the pause is bit-identical to an uninterrupted run passing
    /// through `to`, so [`BeaconSystem::snapshot`] here captures a
    /// resumable checkpoint; calling [`BeaconSystem::run`] afterwards
    /// continues to completion.
    pub fn run_to(&mut self, to: u64) -> bool {
        self.refresh_journey_gates();
        let mut engine = Engine::starting_at(self.clock).with_limit(to);
        let outcome = engine.run(self);
        self.clock = engine.now();
        match outcome {
            RunOutcome::Drained { finished_at } => {
                self.finished_at = finished_at;
                true
            }
            _ => false,
        }
    }

    /// The next cycle this system will simulate (the capture cycle of a
    /// checkpoint taken now).
    pub fn clock(&self) -> Cycle {
        self.clock
    }

    /// Re-arms the per-switch sampling gates from the installed
    /// recorder. Runs at run entry: attribution may have been installed
    /// (or swapped) after this system was built.
    pub(crate) fn refresh_journey_gates(&mut self) {
        let gate = journey::gate();
        for sw in &mut self.switches {
            sw.jgate = gate;
        }
    }

    /// Assembles the measurement bundle after a run.
    pub fn collect(&self) -> RunResult {
        let mut dram = Stats::new();
        let mut comm = Stats::new();
        let mut eng = Stats::new();
        let mut pe_busy = 0;
        let mut tasks = 0;
        let mut hists = Vec::new();
        for sw in &self.switches {
            comm.merge(&sw.fabric.merged_stats());
            eng.merge(&sw.logic.stats);
            if let Some(e) = &sw.logic.engine {
                eng.merge(e.stats());
                pe_busy += e.busy_pe_cycles();
                tasks += e.completed();
            }
            if let Some(ps) = sw.logic.egress.stats() {
                comm.merge(ps);
            }
            for d in &sw.dimms {
                match d {
                    DimmSlot::Cxlg(m) => {
                        dram.merge(m.server.dimm().stats());
                        eng.merge(m.engine.stats());
                        eng.merge(m.server.stats());
                        pe_busy += m.engine.busy_pe_cycles();
                        tasks += m.engine.completed();
                        hists.push(m.server.chip_histogram().clone());
                        if let Some(ps) = m.egress.stats() {
                            comm.merge(ps);
                        }
                    }
                    DimmSlot::Unmodified(u) => {
                        dram.merge(u.server.dimm().stats());
                        eng.merge(u.server.stats());
                        hists.push(u.server.chip_histogram().clone());
                    }
                }
            }
        }
        // RAS report: only for runs armed with a fault schedule. The
        // re-map accounting applies only when the failure actually
        // executed (a run can drain before its scheduled death).
        let degraded = self.cfg.faults.as_ref().map(|fc| {
            let plan = self
                .remap
                .as_deref()
                .filter(|_| eng.get("ras.dimm_killed") > 0);
            beacon_accel::result::DegradedRun {
                seed: fc.seed,
                failed_dimms: eng.get("ras.dimm_killed"),
                lost_capacity_bytes: plan.map_or(0, |r| r.lost_capacity_bytes),
                crc_errors: comm.get("ras.crc_errors"),
                retry_cycles: comm.get("ras.retry_cycles"),
                port_flaps: comm.get("ras.port_flaps"),
                dimm_ue: dram.get("ras.dimm_ue"),
                naks: eng.get("ras.naks"),
                requeued: eng.get("ras.requeued"),
                dropped: eng.get("ras.dropped"),
                remap_regions: plan.map_or(0, |r| r.remap_regions),
                moved_bytes: plan.map_or(0, |r| r.moved_bytes),
                remap_cost_cycles: plan.map_or(0, |r| r.remap_cost_cycles),
            }
        });
        let attribution = journey::snapshot().map(|rec| self.build_attribution(&rec));
        let geometry = self.cfg.geometry;
        RunResult {
            cycles: self.finished_at.as_u64(),
            tasks,
            dram,
            comm,
            engine: eng,
            pe_busy_cycles: pe_busy,
            total_chips: (geometry.ranks * geometry.chips_per_rank) as u64
                * self.cfg.total_dimms() as u64,
            chip_histograms: hists,
            degraded,
            attribution,
        }
    }

    /// Assembles the full bottleneck report from the phase/class
    /// aggregates in `rec` plus component state: utilization rows from
    /// busy-cycle counters and queue rows from the plain (never
    /// digested) depth accumulators.
    fn build_attribution(
        &self,
        rec: &beacon_sim::journey::JourneyRecorder,
    ) -> beacon_sim::journey::Attribution {
        let mut attr = rec.attribution();
        // The hot-path sampling decisions count into the per-switch
        // run-local gates, not the recorder; fold their tallies in.
        for g in self.switches.iter().filter_map(|sw| sw.jgate.as_ref()) {
            attr.seen += g.seen;
            attr.tracked += g.tracked;
        }
        let end = self.finished_at;
        let total = end.as_u64();
        let push_q = |queues: &mut Vec<QueueStat>, label: String, acc: &QueueAcc| {
            let mut acc = acc.clone();
            acc.finalize(end);
            queues.push(QueueStat {
                component: label,
                mean_depth: acc.mean_depth(),
                peak_depth: acc.peak(),
            });
        };
        push_q(&mut attr.queues, "host.stage".to_owned(), &self.q_host);
        for sw in &self.switches {
            let i = sw.index;
            let fab_stats = sw.fabric.merged_stats();
            let bus_bpc = sw.fabric.config().bus_bytes_per_cycle;
            attr.utilization.push(ComponentUtil {
                component: format!("sw{i}.bus"),
                busy_cycles: (fab_stats.get("switch.bus_bytes") as f64 / bus_bpc).ceil() as u64,
                total_cycles: total,
                blocked_events: 0,
            });
            for pl in sw.fabric.port_link_loads() {
                attr.utilization.push(ComponentUtil {
                    component: format!("sw{i}.port{}.{}", pl.port, pl.dir),
                    busy_cycles: (pl.wire_bytes as f64 / pl.bytes_per_cycle).ceil() as u64,
                    total_cycles: total,
                    blocked_events: pl.backpressure,
                });
            }
            if let Some(e) = &sw.logic.engine {
                attr.utilization.push(ComponentUtil {
                    component: format!("sw{i}.logic.pe"),
                    busy_cycles: e.busy_pe_cycles(),
                    total_cycles: e.pe_count() as u64 * total,
                    blocked_events: 0,
                });
            }
            push_q(&mut attr.queues, format!("sw{i}.staged"), &sw.q_staged);
            push_q(&mut attr.queues, format!("sw{i}.logic_inbox"), &sw.q_inbox);
            for (slot, d) in sw.dimms.iter().enumerate() {
                push_q(
                    &mut attr.queues,
                    format!("sw{i}.dimm{slot}.backlog"),
                    &sw.q_backlog[slot],
                );
                let server = match d {
                    DimmSlot::Cxlg(m) => {
                        attr.utilization.push(ComponentUtil {
                            component: format!("sw{i}.dimm{slot}.pe"),
                            busy_cycles: m.engine.busy_pe_cycles(),
                            total_cycles: m.engine.pe_count() as u64 * total,
                            blocked_events: 0,
                        });
                        &m.server
                    }
                    DimmSlot::Unmodified(u) => &u.server,
                };
                let dimm = server.dimm();
                attr.utilization.push(ComponentUtil {
                    component: format!("sw{i}.dimm{slot}.data"),
                    busy_cycles: dimm.data_lane_cycles(),
                    total_cycles: dimm.data_lane_count() as u64 * total,
                    blocked_events: dimm.stats().get("dram.row_conflict"),
                });
            }
        }
        attr.rank_queues();
        attr
    }

    /// Per-chip access histogram of the CXLG-DIMMs only (Fig. 13 data).
    pub fn cxlg_chip_histogram(&self) -> Option<beacon_sim::stats::Histogram> {
        let mut merged: Option<beacon_sim::stats::Histogram> = None;
        for sw in &self.switches {
            for d in &sw.dimms {
                if let DimmSlot::Cxlg(m) = d {
                    match &mut merged {
                        Some(h) => h.merge(m.server.chip_histogram()),
                        None => merged = Some(m.server.chip_histogram().clone()),
                    }
                }
            }
        }
        merged
    }

    // ----- host root complex -------------------------------------------

    fn pump_host(&mut self, now: Cycle) {
        for s in 0..self.switches.len() {
            while let Some(mut bundle) = self.switches[s].fabric.endpoint_recv(Switch::UPLINK, now)
            {
                if journey::active() {
                    // Everything accrued on the uplink is charged to
                    // `Link` here; residency in the host stage becomes
                    // `HostForward` (closed by the next downlink send).
                    for m in &mut bundle.messages {
                        if let Some(stamp) = &mut m.jny {
                            journey::hop(stamp, now, Phase::HostForward);
                        }
                    }
                }
                let ready = now + Duration::new(self.cfg.host_latency);
                // The stage stays sorted by ready cycle: `now` is
                // nondecreasing across pumps and the latency constant.
                debug_assert!(self.host_stage.back().is_none_or(|&(r, _)| r <= ready));
                self.host_stage.push_back((ready, bundle));
            }
        }
        // Sorted stage: the due entries form a prefix, so the sweep stops
        // at the first not-yet-ready deadline instead of cycling the whole
        // queue. Back-pressured bundles go to a reusable scratch and
        // return to the front in their original order — exactly the
        // sequence the old whole-queue rebuild produced.
        debug_assert!(self.host_scratch.is_empty());
        let mut rest = std::mem::take(&mut self.host_scratch);
        while let Some(&(ready, _)) = self.host_stage.front() {
            if ready > now {
                break;
            }
            let (ready, mut bundle) = self.host_stage.pop_front().expect("front checked");
            for m in &mut bundle.messages {
                *m = m.cleared_via_host();
            }
            let dst_switch = bundle.messages[0]
                .dst
                .switch()
                .expect("pool destinations only") as usize;
            match self.switches[dst_switch]
                .fabric
                .endpoint_send(Switch::UPLINK, bundle, now)
            {
                Ok(()) => {}
                Err(e) => rest.push_back((ready, e.into_bundle())),
            }
        }
        while let Some(entry) = rest.pop_back() {
            self.host_stage.push_front(entry);
        }
        self.host_scratch = rest;
        if journey::active() {
            self.q_host.observe_if_changed(self.host_stage.len(), now);
        }
    }

    /// The wall-clock seconds of the finished run at DDR4-1600 tCK.
    pub fn seconds(&self) -> f64 {
        self.finished_at
            .to_seconds(TimingParams::ddr4_1600_22().tck_ps)
    }
}

impl SwitchNode {
    /// Terminal attribution for a tracked request: record the residency
    /// of the final phase, the end-to-end total under `class`, and emit
    /// the closing flow event.
    fn journey_finish(stamp: &JStamp, class: &str, now: Cycle) {
        journey::arrive(stamp, now);
        journey::total(stamp, now, class);
        if trace::enabled(TraceLevel::Flit) {
            trace::emit(
                "journey",
                TraceEvent::instant(
                    now.as_u64(),
                    TraceLevel::Flit,
                    TraceCategory::Journey,
                    "jny.end",
                    stamp.id,
                ),
            );
        }
    }

    fn op_of(kind: AccessKind) -> (ServiceOp, MsgKind) {
        match kind {
            AccessKind::Read => (ServiceOp::Read, MsgKind::ReadReq),
            AccessKind::Write => (ServiceOp::Write, MsgKind::WriteReq),
            AccessKind::Rmw => (ServiceOp::Rmw, MsgKind::AtomicReq),
        }
    }

    // ----- engine access issue (shared by CXLG modules and S logic) ----

    /// Translates and dispatches one engine access. Local segments go to
    /// `local` (the module's own server), remote ones become messages in
    /// `egress`. For the switch logic, `local` is `None` and same-switch
    /// RMWs short-circuit into the logic serve table via `out_local_rmw`.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_access(
        cfg: &BeaconConfig,
        map: &RegionMap,
        self_node: NodeId,
        access: beacon_accel::task::IssuedAccess,
        pending: &mut PendingTable,
        mut local_server: Option<&mut DimmServer>,
        egress: &mut Egress,
        mut local_rmw: Option<&mut Vec<LocalRmw>>,
        jny_gate: Option<&mut JGate>,
        ras: Option<(&mut RasState, u32)>,
        now: Cycle,
    ) {
        let segments = map.translate(&access.access);
        let pid = pending.alloc(access.token, segments.len() as u32, access.blocking);
        if let Some((r, retries)) = ras {
            r.inflight.insert(pid, (access, retries));
        }
        // Attribution sampling: one decision per logical access; every
        // segment carries a copy of the stamp, so multi-segment accesses
        // contribute one phase sample per segment (per-message
        // semantics). `None` whenever attribution is off. The decision
        // runs through the caller's run-local gate — a plain field, so
        // the per-access fast path costs a hash and a compare, with no
        // thread-local traffic.
        let jny = jny_gate.and_then(|g| {
            let (jsw, jmod) = match self_node {
                NodeId::Dimm { switch_idx, slot } => (switch_idx, slot),
                NodeId::SwitchLogic(i) => (i, u32::MAX),
                NodeId::Host => (u32::MAX, u32::MAX),
            };
            g.admit(jsw, jmod, pid, now)
                .map(|id| JStamp::fresh(id, now))
        });
        if let Some(stamp) = &jny {
            if trace::enabled(TraceLevel::Flit) {
                trace::emit(
                    "journey",
                    TraceEvent::instant(
                        now.as_u64(),
                        TraceLevel::Flit,
                        TraceCategory::Journey,
                        "jny.begin",
                        stamp.id,
                    ),
                );
            }
        }
        let (op, msg_kind) = Self::op_of(access.access.kind);
        for seg in segments {
            let seg_is_cxlg =
                matches!(seg.node, NodeId::Dimm { slot, .. } if cfg.slot_is_cxlg(slot));
            if seg.node == self_node {
                if let Some(server) = local_server.as_deref_mut() {
                    let seg_jny = jny.map(|mut st| {
                        journey::hop(&mut st, now, Phase::BankQueue);
                        st
                    });
                    server.request_with(pid, seg.coord, seg.bytes, op, seg_jny);
                    continue;
                }
            }
            // Same-switch RMW short-circuit for the S logic.
            if access.access.kind == AccessKind::Rmw {
                if let Some(rmws) = local_rmw.as_deref_mut() {
                    if seg.node.switch() == self_node.switch() {
                        rmws.push((pid, seg.coord, seg.bytes, seg.node, jny));
                        continue;
                    }
                }
            }
            let via_host = !cfg.opts.mem_access_opt && !seg_is_cxlg;
            let msg = Message {
                src: self_node,
                dst: seg.node,
                kind: msg_kind,
                payload_bytes: seg.bytes,
                tag: pid,
                aux: seg.coord.pack(),
                via_host,
                jny,
            };
            egress.push(msg, now);
        }
    }

    // ----- switch logic -------------------------------------------------

    fn alloc_logic_serve(logic: &mut LogicNode, entry: LogicServe) -> u32 {
        match logic.free_serve.pop() {
            Some(i) => {
                logic.serve[i as usize] = entry;
                i
            }
            None => {
                logic.serve.push(entry);
                (logic.serve.len() - 1) as u32
            }
        }
    }

    /// Issues the read phase of an atomic served by this switch's logic.
    fn logic_start_atomic(&mut self, entry: LogicServe, now: Cycle) {
        let via_host = entry.via_host;
        let sidx = Self::alloc_logic_serve(&mut self.logic, entry);
        self.logic.stats.incr("logic.atomics");
        let msg = Message {
            src: NodeId::SwitchLogic(self.index as u32),
            dst: entry.dimm,
            kind: MsgKind::ReadReq,
            payload_bytes: entry.bytes,
            tag: LOGIC_BIT | sidx as u64,
            aux: entry.coord.pack(),
            via_host,
            // The whole DIMM round trip is the atomic's `Serve` span;
            // its internal phase operations are not separately stamped.
            jny: None,
        };
        self.logic.egress.push(msg, now);
    }

    fn drive_logic(&mut self, ctx: SysCtx<'_>, now: Cycle) {
        // 1. Incoming bundles addressed to this logic.
        while let Some(bundle) = self.fabric.logic_recv() {
            for msg in bundle.messages {
                self.handle_logic_message(ctx, msg, now);
            }
        }

        // 2. ALU stage: atomics whose read phase returned start writing.
        while let Some(&(ready, sidx)) = self.logic.alu_stage.front() {
            if ready > now {
                break;
            }
            self.logic.alu_stage.pop_front();
            let entry = self.logic.serve[sidx as usize];
            let msg = Message {
                src: NodeId::SwitchLogic(self.index as u32),
                dst: entry.dimm,
                kind: MsgKind::WriteReq,
                payload_bytes: entry.bytes,
                tag: LOGIC_BIT | sidx as u64,
                aux: entry.coord.pack(),
                via_host: entry.via_host,
                jny: None,
            };
            self.logic.egress.push(msg, now);
        }

        // 3. The S-variant compute engine. Issued accesses and the
        // same-switch RMW short-circuits go through reusable scratch
        // buffers (taken out of `self` around the loops that need
        // `&mut self` methods).
        if self.logic.engine.is_some() {
            debug_assert!(self.issued_scratch.is_empty());
            self.logic
                .engine
                .as_mut()
                .expect("checked")
                .tick_into(now, &mut self.issued_scratch);
            let self_node = NodeId::SwitchLogic(self.index as u32);
            let map_idx = self.logic.map_idx;
            debug_assert!(self.rmw_scratch.is_empty());
            let mut issued = std::mem::take(&mut self.issued_scratch);
            let mut local_rmws = std::mem::take(&mut self.rmw_scratch);
            for ia in issued.drain(..) {
                Self::dispatch_access(
                    ctx.cfg,
                    &ctx.maps_at(now)[map_idx],
                    self_node,
                    ia,
                    &mut self.logic.pending,
                    None,
                    &mut self.logic.egress,
                    Some(&mut local_rmws),
                    self.jgate.as_mut(),
                    self.logic.ras.as_deref_mut().map(|r| (r, 0)),
                    now,
                );
            }
            self.issued_scratch = issued;
            for (pid, coord, bytes, dimm, jny) in local_rmws.drain(..) {
                let entry = LogicServe {
                    requester: self_node,
                    orig_tag: pid,
                    coord,
                    bytes,
                    dimm,
                    phase: AtomicPhase::Read,
                    via_host: !ctx.cfg.opts.mem_access_opt,
                    in_use: true,
                    jny: jny.map(|mut st| {
                        journey::hop(&mut st, now, Phase::Serve);
                        st
                    }),
                };
                self.logic_start_atomic(entry, now);
            }
            self.rmw_scratch = local_rmws;
        }

        // 4. Pump egress onto the switch-bus.
        self.logic.egress.collect(now);
        while let Some(bundle) = self.logic.egress.queue.pop_front() {
            self.fabric.logic_send(bundle, now);
        }
    }

    fn handle_logic_message(&mut self, ctx: SysCtx<'_>, msg: Message, now: Cycle) {
        match msg.kind {
            MsgKind::AtomicReq => {
                // Atomic intercepted for an unmodified DIMM of this switch.
                let entry = LogicServe {
                    requester: msg.src,
                    orig_tag: msg.tag,
                    coord: DramCoord::unpack(msg.aux),
                    bytes: msg.payload_bytes,
                    dimm: msg.dst,
                    phase: AtomicPhase::Read,
                    via_host: msg.via_host || !ctx.cfg.opts.mem_access_opt,
                    in_use: true,
                    jny: msg.jny.map(|mut st| {
                        journey::hop(&mut st, now, Phase::Serve);
                        st
                    }),
                };
                self.logic_start_atomic(entry, now);
            }
            MsgKind::ReadResp | MsgKind::Ack if msg.tag & LOGIC_BIT != 0 => {
                let sidx = (msg.tag & !LOGIC_BIT) as u32;
                let entry = self.logic.serve[sidx as usize];
                debug_assert!(entry.in_use);
                match entry.phase {
                    AtomicPhase::Read => {
                        // Arithmetic in the Atomic Engine, then write back.
                        self.logic.serve[sidx as usize].phase = AtomicPhase::Write;
                        let ready = now + Duration::new(ctx.rmw_alu_cycles);
                        self.logic.alu_stage.push_back((ready, sidx));
                    }
                    AtomicPhase::Write => {
                        self.logic.serve[sidx as usize].in_use = false;
                        self.logic.free_serve.push(sidx);
                        let requester = entry.requester;
                        if requester == NodeId::SwitchLogic(self.index as u32) {
                            // Our own engine's RMW (BEACON-S local case).
                            if let Some(stamp) = &entry.jny {
                                Self::journey_finish(stamp, &self.logic.jny_label, now);
                            }
                            if let Some((token, _)) =
                                self.logic.pending.complete_one(entry.orig_tag)
                            {
                                ras_done(&mut self.logic.ras, entry.orig_tag);
                                if let Some(e) = self.logic.engine.as_mut() {
                                    e.on_data(token, now);
                                }
                            }
                        } else {
                            let ack = Message {
                                src: NodeId::SwitchLogic(self.index as u32),
                                dst: requester,
                                kind: MsgKind::Ack,
                                payload_bytes: 0,
                                tag: entry.orig_tag,
                                aux: 0,
                                via_host: entry.via_host,
                                jny: entry.jny.map(|mut st| {
                                    journey::hop(&mut st, now, Phase::Return);
                                    st.resp = true;
                                    st
                                }),
                            };
                            self.logic.egress.push(ack, now);
                        }
                    }
                }
            }
            MsgKind::ReadResp | MsgKind::Ack => {
                // Response for the S-variant engine's plain access.
                if let Some(stamp) = &msg.jny {
                    Self::journey_finish(stamp, &self.logic.jny_label, now);
                }
                if let Some((token, _)) = self.logic.pending.complete_one(msg.tag) {
                    ras_done(&mut self.logic.ras, msg.tag);
                    if let Some(e) = self.logic.engine.as_mut() {
                        e.on_data(token, now);
                    }
                }
            }
            MsgKind::Nak if msg.tag & LOGIC_BIT != 0 => {
                // A DIMM serving one phase of an atomic is gone: abort
                // the atomic and bounce it to the original requester,
                // who retries it under the post-failure maps.
                let sidx = (msg.tag & !LOGIC_BIT) as u32;
                let entry = self.logic.serve[sidx as usize];
                debug_assert!(entry.in_use);
                self.logic.serve[sidx as usize].in_use = false;
                self.logic.free_serve.push(sidx);
                let self_node = NodeId::SwitchLogic(self.index as u32);
                if entry.requester == self_node {
                    self.logic_retry_or_drop(ctx, entry.orig_tag, now);
                } else {
                    self.logic.stats.incr("ras.naks");
                    self.logic.egress.push(
                        Message::nak_to(self_node, entry.requester, entry.orig_tag, entry.via_host),
                        now,
                    );
                }
            }
            MsgKind::Nak => {
                // A plain access of the S engine hit a dead or poisoned
                // DIMM.
                self.logic_retry_or_drop(ctx, msg.tag, now);
            }
            other => {
                debug_assert!(false, "unexpected {other:?} at switch logic");
            }
        }
    }

    /// Requester-side nak handling for the switch logic's own accesses:
    /// the first failed segment hands the token back, and the whole
    /// logical access is re-issued under the map epoch in force at
    /// `now`. After [`MAX_ACCESS_RETRIES`] the access is dropped — the
    /// task resumes without its data rather than wedging the run, and
    /// the loss is reported in the degraded-run section.
    fn logic_retry_or_drop(&mut self, ctx: SysCtx<'_>, pid: u64, now: Cycle) {
        let Some((_token, _)) = self.logic.pending.poison_one(pid) else {
            return; // straggler segment of an already-retried access
        };
        let (ia, retries) = self
            .logic
            .ras
            .as_mut()
            .and_then(|r| r.inflight.remove(&pid))
            .expect("nak'd access must be tracked");
        if retries >= MAX_ACCESS_RETRIES {
            self.logic.stats.incr("ras.dropped");
            if let Some(e) = self.logic.engine.as_mut() {
                e.on_data(ia.token, now);
            }
            return;
        }
        self.logic.stats.incr("ras.requeued");
        let self_node = NodeId::SwitchLogic(self.index as u32);
        let map_idx = self.logic.map_idx;
        debug_assert!(self.rmw_scratch.is_empty());
        let mut local_rmws = std::mem::take(&mut self.rmw_scratch);
        Self::dispatch_access(
            ctx.cfg,
            &ctx.maps_at(now)[map_idx],
            self_node,
            ia,
            &mut self.logic.pending,
            None,
            &mut self.logic.egress,
            Some(&mut local_rmws),
            self.jgate.as_mut(),
            self.logic.ras.as_deref_mut().map(|r| (r, retries + 1)),
            now,
        );
        for (pid, coord, bytes, dimm, jny) in local_rmws.drain(..) {
            let entry = LogicServe {
                requester: self_node,
                orig_tag: pid,
                coord,
                bytes,
                dimm,
                phase: AtomicPhase::Read,
                via_host: !ctx.cfg.opts.mem_access_opt,
                in_use: true,
                jny: jny.map(|mut st| {
                    journey::hop(&mut st, now, Phase::Serve);
                    st
                }),
            };
            self.logic_start_atomic(entry, now);
        }
        self.rmw_scratch = local_rmws;
    }

    // ----- DIMM slots ----------------------------------------------------

    fn alloc_serve(serve: &mut Vec<ServeEntry>, free: &mut Vec<u32>, entry: ServeEntry) -> u32 {
        match free.pop() {
            Some(i) => {
                serve[i as usize] = entry;
                i
            }
            None => {
                serve.push(entry);
                (serve.len() - 1) as u32
            }
        }
    }

    fn drive_slot(&mut self, ctx: SysCtx<'_>, slot: usize, now: Cycle) {
        let port = self.fabric.dimm_port(slot as u32);

        // 1. Deliver incoming bundles.
        while let Some(bundle) = self.fabric.endpoint_recv(port, now) {
            for msg in bundle.messages {
                self.handle_slot_message(ctx, slot, msg, now);
            }
        }

        // 2. CXLG engines issue accesses (through the reusable scratch).
        if let DimmSlot::Cxlg(_) = &self.dimms[slot] {
            debug_assert!(self.issued_scratch.is_empty());
            let mut issued = std::mem::take(&mut self.issued_scratch);
            match &mut self.dimms[slot] {
                DimmSlot::Cxlg(m) => m.engine.tick_into(now, &mut issued),
                DimmSlot::Unmodified(_) => unreachable!(),
            }
            for ia in issued.drain(..) {
                match &mut self.dimms[slot] {
                    DimmSlot::Cxlg(m) => {
                        Self::dispatch_access(
                            ctx.cfg,
                            &ctx.maps_at(now)[m.map_idx],
                            m.node,
                            ia,
                            &mut m.pending,
                            Some(&mut m.server),
                            &mut m.egress,
                            None,
                            self.jgate.as_mut(),
                            m.ras.as_deref_mut().map(|r| (r, 0)),
                            now,
                        );
                    }
                    DimmSlot::Unmodified(_) => unreachable!(),
                }
            }
            self.issued_scratch = issued;
        }

        // 3. Server progress + completions, split into response messages
        // and local pending ids through the reusable scratch buffers.
        // Completions whose data beat hit an uncorrectable error answer
        // with a Nak instead of their response.
        debug_assert!(
            self.done_scratch.is_empty()
                && self.resp_scratch.is_empty()
                && self.comp_scratch.is_empty()
                && self.poison_scratch.is_empty()
        );
        let mut done = std::mem::take(&mut self.done_scratch);
        let mut responses = std::mem::take(&mut self.resp_scratch);
        let mut completions = std::mem::take(&mut self.comp_scratch);
        let mut poisoned = std::mem::take(&mut self.poison_scratch);
        let mut jny = std::mem::take(&mut self.jny_scratch);
        match &mut self.dimms[slot] {
            DimmSlot::Cxlg(m) => {
                m.server.tick(now);
                m.server.drain_done_into(&mut done);
                m.server.drain_poisoned_into(&mut poisoned);
                m.server.drain_jny_done_into(&mut jny);
                Self::split_server_done(
                    &mut done,
                    &mut m.serve,
                    &mut m.free_serve,
                    m.node,
                    false,
                    &poisoned,
                    &mut jny,
                    &mut responses,
                    &mut completions,
                );
            }
            DimmSlot::Unmodified(u) => {
                u.server.tick(now);
                u.server.drain_done_into(&mut done);
                u.server.drain_poisoned_into(&mut poisoned);
                u.server.drain_jny_done_into(&mut jny);
                Self::split_server_done(
                    &mut done,
                    &mut u.serve,
                    &mut u.free_serve,
                    u.node,
                    true,
                    &poisoned,
                    &mut jny,
                    &mut responses,
                    &mut completions,
                );
            }
        }
        if !poisoned.is_empty() {
            // UE streams are installed only on serve-only unmodified
            // DIMMs, so every poisoned completion nak'd a remote
            // requester.
            debug_assert!(poisoned.iter().all(|id| id & SERVE_BIT != 0));
            self.logic.stats.add("ras.naks", poisoned.len() as u64);
            poisoned.clear();
        }
        for msg in responses.drain(..) {
            match &mut self.dimms[slot] {
                DimmSlot::Cxlg(m) => m.egress.push(msg, now),
                DimmSlot::Unmodified(u) => u.egress.push(msg, now),
            }
        }
        for pid in completions.drain(..) {
            if let DimmSlot::Cxlg(m) = &mut self.dimms[slot] {
                if !jny.is_empty() {
                    if let Some(pos) = jny.iter().position(|(jid, _)| *jid == pid) {
                        let (_, stamp) = jny.swap_remove(pos);
                        Self::journey_finish(&stamp, &m.jny_label, now);
                    }
                }
                if let Some((token, _)) = m.pending.complete_one(pid) {
                    ras_done(&mut m.ras, pid);
                    m.engine.on_data(token, now);
                }
            }
        }
        // Every finished stamp was attached to a response or closed
        // above; anything left would leak lookups into later ticks.
        debug_assert!(jny.is_empty());
        jny.clear();
        self.jny_scratch = jny;
        self.done_scratch = done;
        self.resp_scratch = responses;
        self.comp_scratch = completions;
        self.poison_scratch = poisoned;

        // 4. Pump egress onto the port link (with back-pressure retry).
        let fabric = &mut self.fabric;
        match &mut self.dimms[slot] {
            DimmSlot::Cxlg(m) => {
                m.egress.collect(now);
                Self::pump_port(fabric, port, &mut m.egress, now);
            }
            DimmSlot::Unmodified(u) => {
                u.egress.collect(now);
                Self::pump_port(fabric, port, &mut u.egress, now);
            }
        }
        // The drive above is the only steady-state mutator of this
        // slot's endpoints; recompute the memoized horizon lazily on
        // the next probe.
        self.slot_h_valid[slot] = false;
    }

    fn pump_port(fabric: &mut Switch, port: usize, egress: &mut Egress, now: Cycle) {
        while let Some(bundle) = egress.queue.pop_front() {
            match fabric.endpoint_send(port, bundle, now) {
                Ok(()) => {}
                Err(e) => {
                    egress.queue.push_front(e.into_bundle());
                    break;
                }
            }
        }
    }

    /// Splits finished server operations into response messages (for
    /// remote serves) and local pending ids, appending to the caller's
    /// reusable buffers and draining `done`. Unmodified DIMMs inflate
    /// read responses to whole 64 B lines (standard CXL.mem transfers).
    /// Ids in `poisoned` (a UE hit their data beat) answer with a Nak.
    #[allow(clippy::too_many_arguments)]
    fn split_server_done(
        done: &mut Vec<(u64, Cycle)>,
        serve: &mut [ServeEntry],
        free: &mut Vec<u32>,
        node: NodeId,
        inflate_lines: bool,
        poisoned: &[u64],
        jny: &mut Vec<(u64, JStamp)>,
        responses: &mut Vec<Message>,
        completions: &mut Vec<u64>,
    ) {
        for (id, _at) in done.drain(..) {
            if id & SERVE_BIT != 0 {
                // Reclaim the stamp the server finished alongside this
                // id (if the request was tracked) and attach it to the
                // response. Local ids keep theirs in `jny` for the
                // caller's completion loop to close.
                let stamp = if jny.is_empty() {
                    None
                } else {
                    jny.iter()
                        .position(|(jid, _)| *jid == id)
                        .map(|pos| jny.swap_remove(pos).1)
                };
                let sidx = (id & !SERVE_BIT) as usize;
                let entry = serve[sidx];
                debug_assert!(entry.in_use);
                serve[sidx].in_use = false;
                free.push(sidx as u32);
                // `poisoned` is almost always empty; a linear scan of
                // the rare fault-cycle entries beats any set lookup.
                if !poisoned.is_empty() && poisoned.contains(&id) {
                    // The retry travels as a fresh access; the aborted
                    // journey is dropped rather than half-attributed.
                    responses.push(Message::nak_to(
                        node,
                        entry.requester,
                        entry.orig_tag,
                        entry.via_host,
                    ));
                    continue;
                }
                let resp = match entry.kind {
                    MsgKind::ReadReq => {
                        let bytes = if inflate_lines {
                            entry.bytes.div_ceil(64) * 64
                        } else {
                            entry.bytes
                        };
                        Message {
                            src: node,
                            dst: entry.requester,
                            kind: MsgKind::ReadResp,
                            payload_bytes: bytes,
                            tag: entry.orig_tag,
                            aux: 0,
                            via_host: entry.via_host,
                            jny: stamp,
                        }
                    }
                    _ => Message {
                        src: node,
                        dst: entry.requester,
                        kind: MsgKind::Ack,
                        payload_bytes: 0,
                        tag: entry.orig_tag,
                        aux: 0,
                        via_host: entry.via_host,
                        jny: stamp,
                    },
                };
                responses.push(resp);
            } else {
                completions.push(id);
            }
        }
    }

    fn handle_slot_message(&mut self, ctx: SysCtx<'_>, slot: usize, msg: Message, now: Cycle) {
        match msg.kind {
            MsgKind::ReadReq | MsgKind::WriteReq | MsgKind::AtomicReq => {
                let coord = DramCoord::unpack(msg.aux);
                let op = match msg.kind {
                    MsgKind::ReadReq => ServiceOp::Read,
                    MsgKind::WriteReq => ServiceOp::Write,
                    MsgKind::AtomicReq => ServiceOp::Rmw,
                    _ => unreachable!(),
                };
                let entry = ServeEntry {
                    requester: msg.src,
                    orig_tag: msg.tag,
                    kind: msg.kind,
                    bytes: msg.payload_bytes,
                    via_host: msg.via_host,
                    in_use: true,
                };
                // Arrival at the serving DIMM: everything since the last
                // transition was transport; residency from here is
                // `BankQueue` until the first DRAM command issues.
                let jny = msg.jny.map(|mut st| {
                    journey::hop(&mut st, now, Phase::BankQueue);
                    if trace::enabled(TraceLevel::Flit) {
                        trace::emit(
                            "journey",
                            TraceEvent::instant(
                                now.as_u64(),
                                TraceLevel::Flit,
                                TraceCategory::Journey,
                                "jny.hop",
                                st.id,
                            ),
                        );
                    }
                    st
                });
                match &mut self.dimms[slot] {
                    DimmSlot::Cxlg(m) => {
                        let sidx = Self::alloc_serve(&mut m.serve, &mut m.free_serve, entry);
                        m.server.request_with(
                            SERVE_BIT | sidx as u64,
                            coord,
                            msg.payload_bytes,
                            op,
                            jny,
                        );
                    }
                    DimmSlot::Unmodified(u) => {
                        debug_assert!(
                            msg.kind != MsgKind::AtomicReq,
                            "atomics must be intercepted by the switch logic"
                        );
                        if u.server.is_failed() {
                            // The DIMM is dead: bounce the request
                            // straight back so the requester re-homes it
                            // (the tracked journey, if any, is dropped).
                            u.egress
                                .push(Message::nak_to(u.node, msg.src, msg.tag, msg.via_host), now);
                            self.logic.stats.incr("ras.naks");
                            return;
                        }
                        let sidx = Self::alloc_serve(&mut u.serve, &mut u.free_serve, entry);
                        u.server.request_with(
                            SERVE_BIT | sidx as u64,
                            coord,
                            msg.payload_bytes,
                            op,
                            jny,
                        );
                    }
                }
            }
            MsgKind::ReadResp | MsgKind::Ack => match &mut self.dimms[slot] {
                DimmSlot::Cxlg(m) => {
                    if let Some(stamp) = &msg.jny {
                        Self::journey_finish(stamp, &m.jny_label, now);
                    }
                    if let Some((token, _)) = m.pending.complete_one(msg.tag) {
                        ras_done(&mut m.ras, msg.tag);
                        m.engine.on_data(token, now);
                    }
                }
                DimmSlot::Unmodified(_) => {
                    debug_assert!(false, "unmodified DIMM received a response");
                }
            },
            MsgKind::Nak => match &mut self.dimms[slot] {
                // One segment of a CXLG engine's access hit a dead or
                // poisoned DIMM: the first nak hands the token back and
                // re-issues the whole logical access under the map epoch
                // in force at `now`; stragglers just drain.
                DimmSlot::Cxlg(m) => {
                    if m.pending.poison_one(msg.tag).is_some() {
                        let (ia, retries) = m
                            .ras
                            .as_mut()
                            .and_then(|r| r.inflight.remove(&msg.tag))
                            .expect("nak'd access must be tracked");
                        if retries >= MAX_ACCESS_RETRIES {
                            self.logic.stats.incr("ras.dropped");
                            m.engine.on_data(ia.token, now);
                        } else {
                            self.logic.stats.incr("ras.requeued");
                            Self::dispatch_access(
                                ctx.cfg,
                                &ctx.maps_at(now)[m.map_idx],
                                m.node,
                                ia,
                                &mut m.pending,
                                Some(&mut m.server),
                                &mut m.egress,
                                None,
                                self.jgate.as_mut(),
                                m.ras.as_deref_mut().map(|r| (r, retries + 1)),
                                now,
                            );
                        }
                    }
                }
                DimmSlot::Unmodified(_) => {
                    debug_assert!(false, "unmodified DIMM received a nak");
                }
            },
            MsgKind::Control => {}
        }
    }

    // ----- shard surface -------------------------------------------------

    /// Executes a scheduled whole-DIMM hard failure once `now` reaches
    /// its cycle: the DIMM aborts everything it holds, and every aborted
    /// operation naks its remote requester (unmodified DIMMs never issue
    /// requests of their own, so every casualty has one). Shard-local
    /// and identical under the sequential and parallel engines.
    fn apply_dimm_failure(&mut self, now: Cycle) {
        let Some(f) = &mut self.ras_fail else { return };
        if f.done || now < f.at {
            return;
        }
        f.done = true;
        let slot = f.slot;
        match &mut self.dimms[slot] {
            DimmSlot::Unmodified(u) => {
                // One-time path: a fresh Vec beats threading scratch here.
                let mut lost = Vec::new();
                u.server.fail_into(&mut lost);
                for id in &lost {
                    debug_assert!(id & SERVE_BIT != 0, "unmodified DIMMs only serve");
                    let sidx = (id & !SERVE_BIT) as usize;
                    let entry = u.serve[sidx];
                    debug_assert!(entry.in_use);
                    u.serve[sidx].in_use = false;
                    u.free_serve.push(sidx as u32);
                    u.egress.push(
                        Message::nak_to(u.node, entry.requester, entry.orig_tag, entry.via_host),
                        now,
                    );
                }
                self.logic.stats.incr("ras.dimm_killed");
                self.logic.stats.add("ras.naks", lost.len() as u64);
                self.slot_h_valid[slot] = false;
            }
            DimmSlot::Cxlg(_) => {
                unreachable!("validate() restricts hard failures to unmodified slots")
            }
        }
    }

    /// Advances this switch subtree by one cycle: fabric, in-switch
    /// logic, then every DIMM slot — exactly the per-switch slice of the
    /// sequential [`Tick::tick`] loop.
    pub(crate) fn tick_cycle(&mut self, ctx: SysCtx<'_>, now: Cycle) {
        self.apply_dimm_failure(now);
        self.fabric.tick(now);
        // Dense fast path: drive only the endpoints that can act this
        // cycle. Each gate is the same per-component horizon the
        // engine-level skip already trusts, plus the port's link-arrival
        // horizon — before it, the endpoint's receive pump is guaranteed
        // empty and every drive step below is a no-op.
        let dense = dense_fastpath_enabled();
        if !dense || self.logic_horizon() <= now {
            self.drive_logic(ctx, now);
        }
        for slot in 0..self.dimms.len() {
            if dense && self.slot_horizon(slot) > now {
                continue;
            }
            self.drive_slot(ctx, slot, now);
        }
        if journey::active() {
            // Queue depths only mutate inside this function, so a check
            // per executed tick integrates depth-over-time exactly even
            // when the engine fast-forwards dead spans; the unchanged
            // case (the common one) is a compare per queue.
            self.q_staged
                .observe_if_changed(self.fabric.staged_len(), now);
            self.q_inbox
                .observe_if_changed(self.fabric.logic_inbox_len(), now);
            for (slot, d) in self.dimms.iter().enumerate() {
                let depth = match d {
                    DimmSlot::Cxlg(m) => m.server.backlog_len() + m.server.dimm().queue_len(),
                    DimmSlot::Unmodified(u) => u.server.backlog_len() + u.server.dimm().queue_len(),
                };
                self.q_backlog[slot].observe_if_changed(depth, now);
            }
        }
    }

    /// The in-switch logic's event horizon: the earliest cycle at which
    /// [`SwitchNode::drive_logic`] can do anything — inbox delivery, an
    /// ALU-stage writeback, engine progress, or an egress pump. The same
    /// per-component horizons [`SwitchNode::subtree_next_event`] sums,
    /// restricted to the logic.
    fn logic_horizon(&self) -> Cycle {
        if self.fabric.logic_inbox_len() > 0 {
            return Cycle::ZERO;
        }
        let mut h = self.logic.egress.next_event();
        if let Some(&(ready, _)) = self.logic.alu_stage.front() {
            h = h.min(ready);
        }
        if let Some(e) = &self.logic.engine {
            h = h.min(e.next_event());
        }
        h
    }

    /// A DIMM slot's event horizon: the earliest cycle at which
    /// [`SwitchNode::drive_slot`] can do anything — a bundle landing on
    /// its port, engine or server progress, or an egress pump.
    fn slot_horizon(&mut self, slot: usize) -> Cycle {
        let port = self.fabric.dimm_port(slot as u32);
        let arrival = self.fabric.port_arrival(port);
        if !self.slot_h_valid[slot] {
            self.slot_h[slot] = match &self.dimms[slot] {
                DimmSlot::Cxlg(m) => m
                    .engine
                    .next_event()
                    .min(m.server.next_event())
                    .min(m.egress.next_event()),
                DimmSlot::Unmodified(u) => u.server.next_event().min(u.egress.next_event()),
            };
            self.slot_h_valid[slot] = true;
        }
        arrival.min(self.slot_h[slot])
    }

    /// True when nothing under this switch has queued or in-flight work
    /// (the per-switch clause of the sequential idle check).
    pub(crate) fn subtree_idle(&self) -> bool {
        self.fabric.is_idle()
            && self.logic.egress.is_idle()
            && self.logic.alu_stage.is_empty()
            && self.logic.pending.is_empty()
            && self
                .logic
                .engine
                .as_ref()
                .map(TaskEngine::all_done)
                .unwrap_or(true)
            && self.dimms.iter().all(|d| match d {
                DimmSlot::Cxlg(m) => {
                    m.engine.all_done()
                        && m.server.is_idle()
                        && m.egress.is_idle()
                        && m.pending.is_empty()
                }
                DimmSlot::Unmodified(u) => u.server.is_idle() && u.egress.is_idle(),
            })
    }

    /// This subtree's event horizon as an absolute cycle: the minimum of
    /// every component's own horizon — fabric (staged bundles, link
    /// arrivals, logic inbox), in-switch logic (ALU stage, compute
    /// engine, egress) and each DIMM slot (engine, server, egress). A
    /// cycle at or before "now" means the subtree must be ticked next
    /// cycle; [`Cycle::NEVER`] means it is fully quiescent.
    pub(crate) fn subtree_next_event(&self) -> Cycle {
        // `Cycle::ZERO` means "actionable immediately" — nothing can
        // lower the min further, so stop sweeping the moment any
        // contributor reports it. In a dense phase (the only time the
        // sweep is hot) some component is almost always immediately
        // actionable, so the common case touches a fraction of the
        // subtree.
        let mut h = self.fabric.next_event();
        // A pending DIMM death is a time-driven fault: fast-forwarding
        // must stop at (or before) it, or the kill cycle would depend on
        // the skip pattern.
        if let Some(f) = &self.ras_fail {
            if !f.done {
                h = h.min(f.at);
            }
        }
        if h == Cycle::ZERO {
            return h;
        }
        h = h.min(self.logic.egress.next_event());
        if let Some(&(ready, _)) = self.logic.alu_stage.front() {
            h = h.min(ready);
        }
        if let Some(e) = &self.logic.engine {
            h = h.min(e.next_event());
        }
        for d in &self.dimms {
            if h == Cycle::ZERO {
                return h;
            }
            match d {
                DimmSlot::Cxlg(m) => {
                    h = h
                        .min(m.engine.next_event())
                        .min(m.server.next_event())
                        .min(m.egress.next_event());
                }
                DimmSlot::Unmodified(u) => {
                    h = h.min(u.server.next_event()).min(u.egress.next_event());
                }
            }
        }
        h
    }

    /// This subtree's share of [`Probe::progress_counter`].
    pub(crate) fn progress_counter(&self) -> u64 {
        let dram_cmds =
            |s: &Stats| s.get("dram.cmd.read") + s.get("dram.cmd.write") + s.get("dram.cmd.act");
        let mut n = self.fabric.stats().get("switch.forwarded");
        if let Some(e) = &self.logic.engine {
            n += e.completed() as u64 + e.stats().get("engine.accesses_issued");
        }
        for d in &self.dimms {
            match d {
                DimmSlot::Cxlg(m) => {
                    n += m.engine.completed() as u64
                        + m.engine.stats().get("engine.accesses_issued")
                        + dram_cmds(m.server.dimm().stats());
                }
                DimmSlot::Unmodified(u) => {
                    n += dram_cmds(u.server.dimm().stats());
                }
            }
        }
        n
    }

    /// Accumulates this subtree's share of [`Probe::gauges`].
    pub(crate) fn accumulate_gauges(&self, acc: &mut GaugeAcc) {
        acc.link_occupancy += self.fabric.link_occupancy();
        acc.switch_staged += self.fabric.staged_len() + self.fabric.logic_inbox_len();
        acc.pending += self.logic.pending.in_flight();
        if let Some(e) = &self.logic.engine {
            acc.pe_busy += e.busy_pes();
            acc.tasks_ready += e.ready_len();
            acc.tasks_completed += e.completed();
        }
        for d in &self.dimms {
            match d {
                DimmSlot::Cxlg(m) => {
                    acc.dram_queue += m.server.dimm().queue_len();
                    acc.dram_backlog += m.server.backlog_len();
                    acc.pending += m.pending.in_flight();
                    acc.pe_busy += m.engine.busy_pes();
                    acc.tasks_ready += m.engine.ready_len();
                    acc.tasks_completed += m.engine.completed();
                }
                DimmSlot::Unmodified(u) => {
                    acc.dram_queue += u.server.dimm().queue_len();
                    acc.dram_backlog += u.server.backlog_len();
                }
            }
        }
    }

    /// Writes this subtree's stall-report lines (the per-switch chunk of
    /// [`Probe::state_snapshot`]).
    pub(crate) fn snapshot_into(&self, s: &mut String) {
        let i = self.index;
        let _ = writeln!(
            s,
            "switch {i}: staged={} inbox={} links={}",
            self.fabric.staged_len(),
            self.fabric.logic_inbox_len(),
            self.fabric.link_occupancy(),
        );
        if let Some(e) = &self.logic.engine {
            let _ = writeln!(
                s,
                "  logic: tasks {}/{} busy={} ready={} pending={} egress={}",
                e.completed(),
                e.submitted(),
                e.busy_pes(),
                e.ready_len(),
                self.logic.pending.in_flight(),
                self.logic.egress.queue.len(),
            );
        }
        for (slot, d) in self.dimms.iter().enumerate() {
            match d {
                DimmSlot::Cxlg(m) => {
                    let _ = writeln!(
                        s,
                        "  dimm {slot} (cxlg): tasks {}/{} busy={} ready={} \
                         pending={} backlog={} queue={} egress={}",
                        m.engine.completed(),
                        m.engine.submitted(),
                        m.engine.busy_pes(),
                        m.engine.ready_len(),
                        m.pending.in_flight(),
                        m.server.backlog_len(),
                        m.server.dimm().queue_len(),
                        m.egress.queue.len(),
                    );
                }
                DimmSlot::Unmodified(u) => {
                    let _ = writeln!(
                        s,
                        "  dimm {slot} (unmod): backlog={} queue={} egress={}",
                        u.server.backlog_len(),
                        u.server.dimm().queue_len(),
                        u.egress.queue.len(),
                    );
                }
            }
        }
    }

    /// Pops one bundle that fully arrived at the uplink endpoint before
    /// `horizon`, with its exact arrival cycle.
    pub(crate) fn uplink_recv_before(&mut self, horizon: Cycle) -> Option<(Cycle, Bundle)> {
        self.fabric.endpoint_recv_before(Switch::UPLINK, horizon)
    }

    /// Injects a host-forwarded bundle into the uplink ingress.
    pub(crate) fn uplink_send(
        &mut self,
        bundle: Bundle,
        now: Cycle,
    ) -> Result<(), beacon_cxl::link::SendError> {
        self.fabric.endpoint_send(Switch::UPLINK, bundle, now)
    }
}

// ----- checkpoint serialisation ---------------------------------------
//
// Only dynamic state travels: static topology (node ids, map indices,
// trace labels, per-component parameters) is rebuilt by
// `BeaconSystem::new` from the restored configuration, and each
// component's `restore` overwrites the freshly constructed dynamic
// fields. Attribution state (journey stamps, queue-depth integrals,
// sampling gates) is digest-excluded and restores empty.

fn put_serve_entry(w: &mut SnapWriter, e: &ServeEntry) {
    beacon_cxl::snap::put_node(w, e.requester);
    w.u64(e.orig_tag);
    beacon_cxl::snap::put_kind(w, e.kind);
    w.u32(e.bytes);
    w.bool(e.via_host);
    w.bool(e.in_use);
}

fn get_serve_entry(r: &mut SnapReader<'_>) -> Result<ServeEntry, SnapError> {
    Ok(ServeEntry {
        requester: beacon_cxl::snap::get_node(r)?,
        orig_tag: r.u64()?,
        kind: beacon_cxl::snap::get_kind(r)?,
        bytes: r.u32()?,
        via_host: r.bool()?,
        in_use: r.bool()?,
    })
}

fn put_logic_serve(w: &mut SnapWriter, e: &LogicServe) {
    beacon_cxl::snap::put_node(w, e.requester);
    w.u64(e.orig_tag);
    w.u64(e.coord.pack());
    w.u32(e.bytes);
    beacon_cxl::snap::put_node(w, e.dimm);
    w.u8(match e.phase {
        AtomicPhase::Read => 0,
        AtomicPhase::Write => 1,
    });
    w.bool(e.via_host);
    w.bool(e.in_use);
}

fn get_logic_serve(r: &mut SnapReader<'_>) -> Result<LogicServe, SnapError> {
    Ok(LogicServe {
        requester: beacon_cxl::snap::get_node(r)?,
        orig_tag: r.u64()?,
        coord: DramCoord::unpack(r.u64()?),
        bytes: r.u32()?,
        dimm: beacon_cxl::snap::get_node(r)?,
        phase: match r.u8()? {
            0 => AtomicPhase::Read,
            1 => AtomicPhase::Write,
            t => return Err(SnapError::Corrupt(format!("unknown AtomicPhase tag {t}"))),
        },
        via_host: r.bool()?,
        in_use: r.bool()?,
        // An in-flight atomic's tracked journey does not survive a
        // checkpoint: attribution is digest-excluded by contract.
        jny: None,
    })
}

fn put_issued(w: &mut SnapWriter, ia: &IssuedAccess) {
    w.u64(ia.token.encode());
    beacon_genomics::snap::put_access(w, &ia.access);
    w.bool(ia.blocking);
}

fn get_issued(r: &mut SnapReader<'_>) -> Result<IssuedAccess, SnapError> {
    Ok(IssuedAccess {
        token: AccessToken::decode(r.u64()?),
        access: beacon_genomics::snap::get_access(r)?,
        blocking: r.bool()?,
    })
}

fn put_ras(w: &mut SnapWriter, ras: &Option<Box<RasState>>) {
    match ras {
        None => w.bool(false),
        Some(r) => {
            w.bool(true);
            w.usize(r.inflight.len());
            for (pid, (ia, retries)) in &r.inflight {
                w.u64(*pid);
                put_issued(w, ia);
                w.u32(*retries);
            }
        }
    }
}

fn get_ras(r: &mut SnapReader<'_>) -> Result<Option<Box<RasState>>, SnapError> {
    if !r.bool()? {
        return Ok(None);
    }
    let n = r.seq_len()?;
    let mut inflight = BTreeMap::new();
    for _ in 0..n {
        let pid = r.u64()?;
        let ia = get_issued(r)?;
        let retries = r.u32()?;
        inflight.insert(pid, (ia, retries));
    }
    Ok(Some(Box::new(RasState { inflight })))
}

/// Bounds-checks a serialised free-list index against its table.
fn check_free(idx: u32, len: usize, what: &str) -> Result<u32, SnapError> {
    if (idx as usize) < len {
        Ok(idx)
    } else {
        Err(SnapError::Corrupt(format!(
            "{what} free index {idx} out of range (table holds {len})"
        )))
    }
}

impl Egress {
    fn snap(&self, w: &mut SnapWriter) {
        match &self.packer {
            None => w.bool(false),
            Some(p) => {
                w.bool(true);
                w.component(p);
            }
        }
        w.usize(self.queue.len());
        for b in &self.queue {
            beacon_cxl::snap::put_bundle(w, b);
        }
    }

    fn restore(&mut self, r: &mut SnapReader<'_>, what: &str) -> Result<(), SnapError> {
        let has_packer = r.bool()?;
        match (&mut self.packer, has_packer) {
            (Some(p), true) => r.component(p)?,
            (None, false) => {}
            (mine, theirs) => {
                return Err(SnapError::Topology(format!(
                    "{what}: snapshot egress packer={theirs}, system has packer={}",
                    mine.is_some()
                )))
            }
        }
        let n = r.seq_len()?;
        self.queue.clear();
        for _ in 0..n {
            self.queue.push_back(beacon_cxl::snap::get_bundle(r)?);
        }
        Ok(())
    }
}

impl LogicNode {
    fn snap(&self, w: &mut SnapWriter) {
        match &self.engine {
            None => w.bool(false),
            Some(e) => {
                w.bool(true);
                w.component(e);
            }
        }
        w.component(&self.pending);
        w.usize(self.serve.len());
        for e in &self.serve {
            put_logic_serve(w, e);
        }
        w.usize(self.free_serve.len());
        for i in &self.free_serve {
            w.u32(*i);
        }
        self.egress.snap(w);
        w.usize(self.alu_stage.len());
        for (ready, sidx) in &self.alu_stage {
            w.cycle(*ready);
            w.u32(*sidx);
        }
        w.component(&self.stats);
        put_ras(w, &self.ras);
    }

    fn restore(&mut self, r: &mut SnapReader<'_>, sw: usize) -> Result<(), SnapError> {
        let has_engine = r.bool()?;
        match (&mut self.engine, has_engine) {
            (Some(e), true) => r.component(e)?,
            (None, false) => {}
            (mine, theirs) => {
                return Err(SnapError::Topology(format!(
                    "switch {sw} logic: snapshot engine={theirs}, system has engine={}",
                    mine.is_some()
                )))
            }
        }
        r.component(&mut self.pending)?;
        let n = r.seq_len()?;
        self.serve.clear();
        for _ in 0..n {
            self.serve.push(get_logic_serve(r)?);
        }
        let n = r.seq_len()?;
        self.free_serve.clear();
        for _ in 0..n {
            self.free_serve
                .push(check_free(r.u32()?, self.serve.len(), "logic serve")?);
        }
        self.egress.restore(r, "switch logic")?;
        let n = r.seq_len()?;
        self.alu_stage.clear();
        for _ in 0..n {
            let ready = r.cycle()?;
            let sidx = check_free(r.u32()?, self.serve.len(), "logic ALU stage")?;
            self.alu_stage.push_back((ready, sidx));
        }
        r.component(&mut self.stats)?;
        self.ras = get_ras(r)?;
        Ok(())
    }
}

impl CxlgModule {
    fn snap(&self, w: &mut SnapWriter) {
        w.component(&self.engine);
        w.component(&self.server);
        w.component(&self.pending);
        w.usize(self.serve.len());
        for e in &self.serve {
            put_serve_entry(w, e);
        }
        w.usize(self.free_serve.len());
        for i in &self.free_serve {
            w.u32(*i);
        }
        self.egress.snap(w);
        put_ras(w, &self.ras);
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.component(&mut self.engine)?;
        r.component(&mut self.server)?;
        r.component(&mut self.pending)?;
        let n = r.seq_len()?;
        self.serve.clear();
        for _ in 0..n {
            self.serve.push(get_serve_entry(r)?);
        }
        let n = r.seq_len()?;
        self.free_serve.clear();
        for _ in 0..n {
            self.free_serve
                .push(check_free(r.u32()?, self.serve.len(), "cxlg serve")?);
        }
        self.egress.restore(r, "cxlg module")?;
        self.ras = get_ras(r)?;
        Ok(())
    }
}

impl UnmodDimm {
    fn snap(&self, w: &mut SnapWriter) {
        w.component(&self.server);
        w.usize(self.serve.len());
        for e in &self.serve {
            put_serve_entry(w, e);
        }
        w.usize(self.free_serve.len());
        for i in &self.free_serve {
            w.u32(*i);
        }
        self.egress.snap(w);
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.component(&mut self.server)?;
        let n = r.seq_len()?;
        self.serve.clear();
        for _ in 0..n {
            self.serve.push(get_serve_entry(r)?);
        }
        let n = r.seq_len()?;
        self.free_serve.clear();
        for _ in 0..n {
            self.free_serve
                .push(check_free(r.u32()?, self.serve.len(), "unmod serve")?);
        }
        self.egress.restore(r, "unmodified DIMM")
    }
}

impl Snapshot for SwitchNode {
    const TAG: &'static str = "core.switch";
    const VERSION: u16 = 1;

    fn snap(&self, w: &mut SnapWriter) {
        // Scratch buffers are drained back to empty before every driver
        // returns; a checkpoint boundary sits between ticks.
        debug_assert!(
            self.issued_scratch.is_empty()
                && self.rmw_scratch.is_empty()
                && self.done_scratch.is_empty()
                && self.resp_scratch.is_empty()
                && self.comp_scratch.is_empty()
                && self.poison_scratch.is_empty()
                && self.jny_scratch.is_empty()
        );
        w.component(&self.fabric);
        self.logic.snap(w);
        w.usize(self.dimms.len());
        for d in &self.dimms {
            match d {
                DimmSlot::Cxlg(m) => {
                    w.u8(0);
                    m.snap(w);
                }
                DimmSlot::Unmodified(u) => {
                    w.u8(1);
                    u.snap(w);
                }
            }
        }
        match &self.ras_fail {
            None => w.bool(false),
            Some(f) => {
                w.bool(true);
                w.usize(f.slot);
                w.cycle(f.at);
                w.bool(f.done);
            }
        }
    }
}

impl Restore for SwitchNode {
    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.component(&mut self.fabric)?;
        let sw = self.index;
        self.logic.restore(r, sw)?;
        let n = r.seq_len()?;
        if n != self.dimms.len() {
            return Err(SnapError::Topology(format!(
                "switch {sw} has {} DIMM slots, snapshot has {n}",
                self.dimms.len()
            )));
        }
        for (slot, d) in self.dimms.iter_mut().enumerate() {
            let tag = r.u8()?;
            match (d, tag) {
                (DimmSlot::Cxlg(m), 0) => m.restore(r)?,
                (DimmSlot::Unmodified(u), 1) => u.restore(r)?,
                (DimmSlot::Cxlg(_), 1) | (DimmSlot::Unmodified(_), 0) => {
                    return Err(SnapError::Topology(format!(
                        "switch {sw} slot {slot}: snapshot DIMM kind does not match"
                    )))
                }
                (_, t) => {
                    return Err(SnapError::Corrupt(format!("unknown DimmSlot tag {t}")));
                }
            }
        }
        self.ras_fail = if r.bool()? {
            let slot = r.usize()?;
            if slot >= self.dimms.len() {
                return Err(SnapError::Corrupt(format!(
                    "scheduled DIMM failure names slot {slot} of {}",
                    self.dimms.len()
                )));
            }
            Some(SlotFault {
                slot,
                at: r.cycle()?,
                done: r.bool()?,
            })
        } else {
            None
        };
        // Per-tick scratch is always empty at a boundary; attribution
        // state (queue integrals, sampling gate) is digest-excluded and
        // restores empty — `refresh_journey_gates` re-arms the gate at
        // the next run entry.
        self.issued_scratch.clear();
        self.rmw_scratch.clear();
        self.done_scratch.clear();
        self.resp_scratch.clear();
        self.comp_scratch.clear();
        self.poison_scratch.clear();
        self.jny_scratch.clear();
        self.q_staged = QueueAcc::default();
        self.q_inbox = QueueAcc::default();
        for q in &mut self.q_backlog {
            *q = QueueAcc::default();
        }
        for v in &mut self.slot_h_valid {
            *v = false;
        }
        self.jgate = None;
        Ok(())
    }
}

impl BeaconSystem {
    /// Clears restore-transient host-side state: the back-pressure
    /// scratch, the staged queue (about to be overwritten) and the
    /// digest-excluded queue-depth integral.
    pub(crate) fn reset_host_for_restore(&mut self) {
        self.host_stage.clear();
        self.host_scratch.clear();
        self.q_host = QueueAcc::default();
    }
}

/// Accumulator behind [`Probe::gauges`], shared by the sequential probe
/// and the parallel barrier sampler so both report identical keys.
#[derive(Debug, Default)]
pub(crate) struct GaugeAcc {
    pub(crate) dram_queue: usize,
    pub(crate) dram_backlog: usize,
    pub(crate) link_occupancy: usize,
    pub(crate) switch_staged: usize,
    pub(crate) pe_busy: usize,
    pub(crate) tasks_ready: usize,
    pub(crate) pending: usize,
    pub(crate) tasks_completed: usize,
}

impl GaugeAcc {
    /// Emits the gauge vector in the stable key order established by the
    /// observability layer.
    pub(crate) fn push_into(&self, host_staged: usize, out: &mut Vec<(String, f64)>) {
        out.push(("dram.queue".to_owned(), self.dram_queue as f64));
        out.push(("dram.backlog".to_owned(), self.dram_backlog as f64));
        out.push(("cxl.link_occupancy".to_owned(), self.link_occupancy as f64));
        out.push(("switch.staged".to_owned(), self.switch_staged as f64));
        out.push(("accel.pe_busy".to_owned(), self.pe_busy as f64));
        out.push(("accel.ready".to_owned(), self.tasks_ready as f64));
        out.push(("accel.pending".to_owned(), self.pending as f64));
        out.push(("tasks.completed".to_owned(), self.tasks_completed as f64));
        out.push(("host.staged".to_owned(), host_staged as f64));
    }
}

impl Tick for BeaconSystem {
    fn tick(&mut self, now: Cycle) {
        self.pump_host(now);
        let ctx = SysCtx {
            cfg: &self.cfg,
            maps: &self.maps,
            rmw_alu_cycles: self.rmw_alu_cycles,
            remap: self.remap.as_deref(),
        };
        for sw in &mut self.switches {
            sw.tick_cycle(ctx, now);
        }
    }

    fn is_idle(&self) -> bool {
        self.host_stage.is_empty() && self.switches.iter().all(SwitchNode::subtree_idle)
    }

    /// The whole pool's event horizon: the minimum over the host stage's
    /// forwarding deadlines and every switch subtree. Lets the engine
    /// fast-forward dead spans (e.g. all PEs computing, DRAM between
    /// refreshes) without changing a single observable cycle.
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut h = Cycle::NEVER;
        // The host stage is sorted by ready cycle (see `pump_host`), so
        // its horizon is just the front deadline.
        if let Some(&(ready, _)) = self.host_stage.front() {
            h = h.min(ready);
        }
        for sw in &self.switches {
            h = h.min(sw.subtree_next_event());
            if h == Cycle::ZERO {
                // Already the global minimum: something is actionable
                // immediately, the remaining subtrees cannot lower it.
                break;
            }
        }
        if h == Cycle::NEVER {
            None
        } else {
            Some(h.max(now.next()))
        }
    }
}

impl Probe for BeaconSystem {
    /// Useful work only: forwarded bundles, issued accesses, retired
    /// tasks and DRAM data/row commands. Refresh is deliberately
    /// excluded — a refreshing but otherwise wedged pool must still trip
    /// the stall detector.
    fn progress_counter(&self) -> u64 {
        self.switches.iter().map(SwitchNode::progress_counter).sum()
    }

    fn gauges(&self, out: &mut Vec<(String, f64)>) {
        let mut acc = GaugeAcc::default();
        for sw in &self.switches {
            sw.accumulate_gauges(&mut acc);
        }
        acc.push_into(self.host_stage.len(), out);
    }

    fn state_snapshot(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "host_stage: {}", self.host_stage.len());
        for sw in &self.switches {
            sw.snapshot_into(&mut s);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Optimizations;
    use crate::mmf::{build_layout, LayoutSpec};
    use beacon_genomics::genome::{Genome, GenomeId};
    use beacon_genomics::prelude::FmIndex;
    use beacon_genomics::reads::ReadSampler;
    use beacon_genomics::trace::Region;

    fn fm_workload(n: usize) -> (Vec<TaskTrace>, u64) {
        let g = Genome::synthetic(GenomeId::Pt, 3000, 5);
        let idx = FmIndex::build(g.sequence());
        let mut sampler = ReadSampler::new(&g, 24, 0.0, 9);
        let traces = (0..n)
            .map(|_| idx.trace_search(sampler.next_read().bases()))
            .collect();
        (traces, idx.index_bytes())
    }

    fn small(cfg: &mut BeaconConfig) {
        cfg.pes_per_module = 8;
        cfg.refresh_enabled = false;
    }

    fn build(cfg: BeaconConfig, index_bytes: u64) -> BeaconSystem {
        let specs = [LayoutSpec::shared_random(Region::FmIndex, index_bytes)];
        let layout = build_layout(&cfg, &specs);
        BeaconSystem::new(cfg, layout)
    }

    fn run_point(
        variant: BeaconVariant,
        opts: Optimizations,
        traces: &[TaskTrace],
        bytes: u64,
    ) -> RunResult {
        let app = beacon_genomics::trace::AppKind::FmSeeding;
        let mut cfg = BeaconConfig::paper(variant, app).with_opts(opts);
        small(&mut cfg);
        let mut sys = build(cfg, bytes);
        sys.submit_round_robin(traces.iter().cloned());
        sys.run()
    }

    #[test]
    fn beacon_d_vanilla_drains() {
        let (traces, bytes) = fm_workload(16);
        let r = run_point(BeaconVariant::D, Optimizations::vanilla(), &traces, bytes);
        assert_eq!(r.tasks, 16);
        assert!(r.cycles > 0);
        assert!(r.dram.get("dram.cmd.read") > 0);
        assert!(r.comm.get("cxl.flits") > 0);
    }

    #[test]
    fn beacon_s_vanilla_drains() {
        let (traces, bytes) = fm_workload(16);
        let r = run_point(BeaconVariant::S, Optimizations::vanilla(), &traces, bytes);
        assert_eq!(r.tasks, 16);
        assert!(r.comm.get("cxl.flits") > 0);
    }

    #[test]
    fn full_opts_beat_vanilla_on_d() {
        let (traces, bytes) = fm_workload(24);
        let app = beacon_genomics::trace::AppKind::FmSeeding;
        let v = run_point(BeaconVariant::D, Optimizations::vanilla(), &traces, bytes);
        let f = run_point(
            BeaconVariant::D,
            Optimizations::full(BeaconVariant::D, app),
            &traces,
            bytes,
        );
        assert!(
            f.cycles < v.cycles,
            "full ({}) should beat vanilla ({})",
            f.cycles,
            v.cycles
        );
    }

    #[test]
    fn mem_access_opt_removes_host_traffic() {
        let (traces, bytes) = fm_workload(12);
        let mut no_opt = Optimizations::vanilla();
        no_opt.data_packing = true;
        let mut with_opt = no_opt;
        with_opt.mem_access_opt = true;
        let a = run_point(BeaconVariant::S, no_opt, &traces, bytes);
        let b = run_point(BeaconVariant::S, with_opt, &traces, bytes);
        assert!(
            b.cycles < a.cycles,
            "device bias must help ({} vs {})",
            b.cycles,
            a.cycles
        );
    }

    #[test]
    fn ideal_comm_is_fastest() {
        let (traces, bytes) = fm_workload(16);
        let app = beacon_genomics::trace::AppKind::FmSeeding;
        let full = run_point(
            BeaconVariant::D,
            Optimizations::full(BeaconVariant::D, app),
            &traces,
            bytes,
        );
        let ideal = run_point(
            BeaconVariant::D,
            Optimizations::full_ideal(BeaconVariant::D, app),
            &traces,
            bytes,
        );
        assert!(ideal.cycles <= full.cycles);
    }

    #[test]
    fn d_uses_cxlg_dram_under_placement() {
        let (traces, bytes) = fm_workload(8);
        let app = beacon_genomics::trace::AppKind::FmSeeding;
        let mut cfg =
            BeaconConfig::paper_d(app).with_opts(Optimizations::full(BeaconVariant::D, app));
        small(&mut cfg);
        let mut sys = build(cfg, bytes);
        sys.submit_round_robin(traces);
        let r = sys.run();
        // The FM index lives on the CXLG-DIMMs; their chip histograms are
        // the only ones with traffic.
        let hist = sys.cxlg_chip_histogram().unwrap();
        assert!(hist.total() > 0);
        assert_eq!(r.tasks, 8);
    }

    #[test]
    fn kmer_atomics_reach_switch_logic_on_s() {
        // k-mer counting on BEACON-S: RMWs are served by the switch PEs.
        let g = Genome::synthetic(GenomeId::Human, 2000, 3);
        let counter = beacon_genomics::kmer::KmerCounter::new(28, 1 << 16, 3, 7);
        let mut sampler = ReadSampler::new(&g, 60, 0.01, 4);
        let traces: Vec<TaskTrace> = (0..8)
            .map(|_| counter.trace_read(&sampler.next_read()))
            .collect();

        let app = beacon_genomics::trace::AppKind::KmerCounting;
        let mut cfg =
            BeaconConfig::paper_s(app).with_opts(Optimizations::full(BeaconVariant::S, app));
        small(&mut cfg);
        let specs = [LayoutSpec::shared_random(Region::Bloom, 1 << 16)];
        let layout = build_layout(&cfg, &specs);
        let mut sys = BeaconSystem::new(cfg, layout);
        sys.submit_round_robin(traces);
        let r = sys.run();
        assert_eq!(r.tasks, 8);
        assert!(r.engine.get("logic.atomics") > 0);
        // Both the read and write phase hit DRAM.
        assert!(r.dram.get("dram.cmd.write") > 0);
    }
}
