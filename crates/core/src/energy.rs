//! The energy model: DRAM + communication + computation.
//!
//! Mirrors the paper's methodology: DRAM energy from DRAMPower-style
//! event counters (`beacon-dram::power`), communication energy from
//! per-byte link/bus constants (CACTI-IO for the DDR channel, Keckler et
//! al. for high-speed serial links), and PE energy from the 28 nm
//! synthesis numbers of Table II.

use serde::{Deserialize, Serialize};

use beacon_accel::result::RunResult;
use beacon_dram::power::{DramEnergy, EnergyParams};

/// PE synthesis results (paper Table II, 28 nm).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PeHardware {
    /// Architecture name.
    pub name: &'static str,
    /// Area in µm².
    pub area_um2: f64,
    /// Dynamic power in mW (when busy).
    pub dynamic_mw: f64,
    /// Leakage power in µW.
    pub leakage_uw: f64,
}

impl PeHardware {
    /// MEDAL's PE (single-purpose FM/hash seeding).
    pub const MEDAL: PeHardware = PeHardware {
        name: "MEDAL",
        area_um2: 8941.39,
        dynamic_mw: 10.57,
        leakage_uw: 36.16,
    };

    /// NEST's PE (single-purpose k-mer counting).
    pub const NEST: PeHardware = PeHardware {
        name: "NEST",
        area_um2: 16721.12,
        dynamic_mw: 8.12,
        leakage_uw: 24.83,
    };

    /// BEACON's multi-purpose PE (FM + hash + KMC + pre-alignment
    /// engines).
    pub const BEACON: PeHardware = PeHardware {
        name: "BEACON",
        area_um2: 14090.23,
        dynamic_mw: 9.48,
        leakage_uw: 18.97,
    };

    /// All three rows of Table II.
    pub const TABLE2: [PeHardware; 3] = [PeHardware::MEDAL, PeHardware::NEST, PeHardware::BEACON];
}

/// Energy breakdown of one run, in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// DRAM device energy.
    pub dram_pj: f64,
    /// Communication energy (links + switch buses).
    pub comm_pj: f64,
    /// PE computation energy (dynamic + leakage).
    pub compute_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total_pj(&self) -> f64 {
        self.dram_pj + self.comm_pj + self.compute_pj
    }

    /// Fraction of total energy spent on communication (the paper's
    /// Fig. 17 metric).
    pub fn comm_share(&self) -> f64 {
        if self.total_pj() == 0.0 {
            return 0.0;
        }
        self.comm_pj / self.total_pj()
    }

    /// Fraction of total energy spent on computation.
    pub fn compute_share(&self) -> f64 {
        if self.total_pj() == 0.0 {
            return 0.0;
        }
        self.compute_pj / self.total_pj()
    }

    /// Total in joules.
    pub fn total_joules(&self) -> f64 {
        self.total_pj() * 1e-12
    }
}

/// The assembled energy model for one system kind.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct EnergyModel {
    /// Link energy per wire byte (CXL SerDes or DDR channel I/O).
    pub link_pj_per_byte: f64,
    /// Switch-internal bus energy per byte.
    pub bus_pj_per_byte: f64,
    /// PE synthesis point.
    pub pe: PeHardware,
    /// Total PEs (for leakage).
    pub total_pes: usize,
    /// DRAM event-energy constants.
    pub dram: EnergyParams,
    /// DRAM cycle time in picoseconds.
    pub tck_ps: u64,
}

impl EnergyModel {
    /// BEACON over CXL: ~10 pJ/bit SerDes links.
    pub fn beacon(total_pes: usize) -> Self {
        EnergyModel {
            link_pj_per_byte: 80.0,
            bus_pj_per_byte: 15.0,
            pe: PeHardware::BEACON,
            total_pes,
            dram: EnergyParams::ddr4_8gb_x4(),
            tck_ps: 1250,
        }
    }

    /// MEDAL/NEST over a DDR channel: ~19 pJ/bit channel I/O (CACTI-IO),
    /// and the host forwarding path.
    pub fn ddr_baseline(pe: PeHardware, total_pes: usize) -> Self {
        EnergyModel {
            link_pj_per_byte: 150.0,
            bus_pj_per_byte: 15.0,
            pe,
            total_pes,
            dram: EnergyParams::ddr4_8gb_x4(),
            tck_ps: 1250,
        }
    }

    /// Computes the breakdown of a run.
    pub fn breakdown(&self, result: &RunResult) -> EnergyBreakdown {
        let dram =
            DramEnergy::from_stats(&result.dram, &self.dram, result.total_chips, result.cycles);

        let wire_bytes = result.comm.get("cxl.wire_bytes") as f64;
        let bus_bytes = result.comm.get("switch.bus_bytes") as f64;
        let comm_pj = wire_bytes * self.link_pj_per_byte + bus_bytes * self.bus_pj_per_byte;

        // Dynamic: busy-PE cycle integral × per-cycle dynamic energy.
        let dyn_pj_per_cycle = self.pe.dynamic_mw * 1e-3 * (self.tck_ps as f64) * 1e-12 * 1e12;
        let dynamic_pj = result.pe_busy_cycles as f64 * dyn_pj_per_cycle;
        // Leakage: all PEs, all cycles.
        let leak_pj_per_cycle = self.pe.leakage_uw * 1e-6 * (self.tck_ps as f64) * 1e-12 * 1e12;
        let leakage_pj = (self.total_pes as f64) * (result.cycles as f64) * leak_pj_per_cycle;

        EnergyBreakdown {
            dram_pj: dram.total_pj(),
            comm_pj,
            compute_pj: dynamic_pj + leakage_pj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beacon_sim::stats::Stats;

    fn result_with(wire_bytes: u64, rd_chips: u64, busy: u64, cycles: u64) -> RunResult {
        let mut dram = Stats::new();
        dram.add("dram.rd_burst_chips", rd_chips);
        let mut comm = Stats::new();
        comm.add("cxl.wire_bytes", wire_bytes);
        RunResult {
            cycles,
            tasks: 1,
            dram,
            comm,
            engine: Stats::new(),
            pe_busy_cycles: busy,
            total_chips: 64,
            chip_histograms: vec![],
            degraded: None,
            attribution: None,
        }
    }

    #[test]
    fn table2_constants_match_paper() {
        assert_eq!(PeHardware::MEDAL.area_um2, 8941.39);
        assert_eq!(PeHardware::NEST.dynamic_mw, 8.12);
        assert_eq!(PeHardware::BEACON.leakage_uw, 18.97);
        // BEACON's PE is smaller than NEST's and leaks less than both.
        let beacon = PeHardware::BEACON;
        let nest = PeHardware::NEST;
        let medal = PeHardware::MEDAL;
        assert!(beacon.area_um2 < nest.area_um2);
        assert!(beacon.leakage_uw < medal.leakage_uw);
    }

    #[test]
    fn comm_energy_scales_with_wire_bytes() {
        let m = EnergyModel::beacon(512);
        let a = m.breakdown(&result_with(1000, 0, 0, 100));
        let b = m.breakdown(&result_with(2000, 0, 0, 100));
        assert!((b.comm_pj / a.comm_pj - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dram_energy_present_when_bursts_counted() {
        let m = EnergyModel::beacon(512);
        let e = m.breakdown(&result_with(0, 100, 0, 100));
        assert!(e.dram_pj > 0.0);
    }

    #[test]
    fn compute_is_dynamic_plus_leakage() {
        let m = EnergyModel::beacon(512);
        let idle = m.breakdown(&result_with(0, 0, 0, 1000));
        let busy = m.breakdown(&result_with(0, 0, 500_000, 1000));
        assert!(idle.compute_pj > 0.0, "leakage always present");
        assert!(busy.compute_pj > idle.compute_pj);
    }

    #[test]
    fn shares_sum_to_one() {
        let m = EnergyModel::beacon(512);
        let e = m.breakdown(&result_with(1000, 100, 1000, 1000));
        let dram_share = e.dram_pj / e.total_pj();
        assert!((e.comm_share() + e.compute_share() + dram_share - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ddr_links_cost_more_per_byte_than_cxl() {
        let cxl = EnergyModel::beacon(512);
        let ddr = EnergyModel::ddr_baseline(PeHardware::MEDAL, 512);
        assert!(ddr.link_pj_per_byte > cxl.link_pj_per_byte);
    }
}
