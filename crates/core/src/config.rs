//! BEACON system configuration (paper Table I) and the optimisation
//! ladder.

use serde::{Deserialize, Serialize};

use beacon_cxl::message::NodeId;
use beacon_cxl::params::LinkParams;
use beacon_dram::params::DimmGeometry;
use beacon_genomics::trace::AppKind;

/// Which BEACON design is instantiated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BeaconVariant {
    /// BEACON-D: computation inside enhanced CXLG-DIMMs.
    D,
    /// BEACON-S: computation inside enhanced CXL-Switches.
    S,
}

impl BeaconVariant {
    /// Figure label.
    pub fn label(&self) -> &'static str {
        match self {
            BeaconVariant::D => "BEACON-D",
            BeaconVariant::S => "BEACON-S",
        }
    }
}

/// The paper's step-by-step optimisation toggles (§IV, evaluated
/// cumulatively in Figs. 12/14/15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Optimizations {
    /// Data packing in the CXL interfaces and switch logic (Fig. 6).
    pub data_packing: bool,
    /// Memory-access optimisation: device-bias access to unmodified
    /// CXL-DIMMs, skipping the host round-trip (Fig. 9).
    pub mem_access_opt: bool,
    /// Architecture- and data-aware data placement + address mapping
    /// (Fig. 10).
    pub placement_mapping: bool,
    /// Multi-chip coalescing in CXLG-DIMMs: chips ganged per access
    /// (Fig. 11 c). `None` = per-chip access. BEACON-D + FM-index only.
    pub multi_chip_coalescing: Option<u32>,
    /// Single-pass k-mer counting (BEACON-S only, §IV-D).
    pub single_pass_kmer: bool,
    /// Idealised communication: infinite bandwidth, zero latency.
    pub ideal_comm: bool,
}

impl Optimizations {
    /// CXL-vanilla: the naïve NDP accelerator near the pool.
    pub fn vanilla() -> Self {
        Optimizations {
            data_packing: false,
            mem_access_opt: false,
            placement_mapping: false,
            multi_chip_coalescing: None,
            single_pass_kmer: false,
            ideal_comm: false,
        }
    }

    /// Everything on (the full BEACON design point for `variant`).
    pub fn full(variant: BeaconVariant, app: AppKind) -> Self {
        Optimizations {
            data_packing: true,
            mem_access_opt: true,
            placement_mapping: true,
            multi_chip_coalescing: if variant == BeaconVariant::D && app == AppKind::FmSeeding {
                Some(4)
            } else {
                None
            },
            single_pass_kmer: variant == BeaconVariant::S && app == AppKind::KmerCounting,
            ideal_comm: false,
        }
    }

    /// The full design point with idealised communication (for the
    /// "% of ideal" statistics).
    pub fn full_ideal(variant: BeaconVariant, app: AppKind) -> Self {
        let mut o = Optimizations::full(variant, app);
        o.ideal_comm = true;
        o
    }

    /// The cumulative optimisation ladder evaluated in the figures, in
    /// paper order, as `(label, toggles)` pairs. The ladder depends on
    /// variant and application (e.g. coalescing only exists for
    /// FM-index on BEACON-D).
    pub fn ladder(variant: BeaconVariant, app: AppKind) -> Vec<(&'static str, Optimizations)> {
        let mut points = vec![("CXL-vanilla", Optimizations::vanilla())];
        let mut cur = Optimizations::vanilla();

        cur.data_packing = true;
        points.push(("+data packing", cur));

        cur.mem_access_opt = true;
        points.push(("+mem access opt", cur));

        cur.placement_mapping = true;
        points.push(("+placement/mapping", cur));

        if variant == BeaconVariant::D && app == AppKind::FmSeeding {
            cur.multi_chip_coalescing = Some(4);
            points.push(("+multi-chip coalescing", cur));
        }
        if variant == BeaconVariant::S && app == AppKind::KmerCounting {
            cur.single_pass_kmer = true;
            points.push(("+single-pass k-mer", cur));
        }
        points
    }
}

/// Deterministic fault-injection configuration (RAS model).
///
/// All fault streams are derived from `seed` with
/// [`beacon_sim::faults::FaultSchedule`]; a given seed yields the
/// identical schedule regardless of thread count or event-horizon
/// skipping. Rates are expressed per *million* cycles so paper-scale
/// runs (tens of Mcycles) see a handful of events at rate 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultsConfig {
    /// Master seed for every per-component fault stream.
    pub seed: u64,
    /// CRC flit errors per million cycles, per link direction.
    pub link_crc_per_mcycle: f64,
    /// Switch-port flaps per million cycles, per DIMM port.
    pub port_flap_per_mcycle: f64,
    /// How long a flapped port stays down, in cycles.
    pub flap_down_cycles: u64,
    /// Uncorrectable DRAM errors per million cycles, per unmodified
    /// DIMM (reads only; CXLG-DIMM accesses are ECC-scrubbed locally).
    pub dimm_ue_per_mcycle: f64,
    /// Cycle at which one whole DIMM fails hard (0 = never).
    pub dimm_fail_at: u64,
    /// Switch hosting the failing DIMM.
    pub dimm_fail_switch: u32,
    /// Slot (within the switch) of the failing DIMM. Must name an
    /// unmodified slot; CXLG-DIMMs hold compute state and are out of
    /// scope for whole-module failure.
    pub dimm_fail_slot: u32,
    /// Horizon (in cycles) out to which fault stamps are pre-drawn.
    pub horizon: u64,
}

impl FaultsConfig {
    /// A quiet schedule: seeded, but every rate zero and no DIMM
    /// failure. Useful as a differential baseline — running with this
    /// config must reproduce the fault-free digests bit-for-bit.
    pub fn quiet(seed: u64) -> Self {
        FaultsConfig {
            seed,
            link_crc_per_mcycle: 0.0,
            port_flap_per_mcycle: 0.0,
            flap_down_cycles: 0,
            dimm_ue_per_mcycle: 0.0,
            dimm_fail_at: 0,
            dimm_fail_switch: 0,
            dimm_fail_slot: 0,
            horizon: 200_000_000,
        }
    }

    /// A lively schedule exercising every fault class at `rate`
    /// events per million cycles (no hard DIMM failure).
    pub fn noisy(seed: u64, rate: f64) -> Self {
        let mut f = FaultsConfig::quiet(seed);
        f.link_crc_per_mcycle = rate;
        f.port_flap_per_mcycle = rate / 4.0;
        f.flap_down_cycles = 2_000;
        f.dimm_ue_per_mcycle = rate / 2.0;
        f
    }

    /// Kills the unmodified DIMM in `slot` of `switch` at cycle `at`,
    /// on top of an otherwise quiet schedule.
    pub fn dimm_loss(seed: u64, switch: u32, slot: u32, at: u64) -> Self {
        let mut f = FaultsConfig::quiet(seed);
        f.dimm_fail_at = at;
        f.dimm_fail_switch = switch;
        f.dimm_fail_slot = slot;
        f
    }

    /// True when no fault of any kind can ever fire.
    pub fn is_quiet(&self) -> bool {
        self.link_crc_per_mcycle == 0.0
            && self.port_flap_per_mcycle == 0.0
            && self.dimm_ue_per_mcycle == 0.0
            && self.dimm_fail_at == 0
    }
}

/// Full system configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BeaconConfig {
    /// Design variant.
    pub variant: BeaconVariant,
    /// Number of CXL switches in the pool.
    pub switches: u32,
    /// CXLG-DIMMs per switch (BEACON-D; 0 for BEACON-S).
    pub cxlg_per_switch: u32,
    /// Unmodified CXL-DIMMs per switch (the memory-expansion pool).
    pub unmodified_per_switch: u32,
    /// PEs per compute module (per CXLG-DIMM for D, per switch for S).
    pub pes_per_module: usize,
    /// PE compute latency per step, in cycles.
    pub pe_latency: u32,
    /// Per-DIMM CXL link.
    pub dimm_link: LinkParams,
    /// Host uplink per switch.
    pub uplink: LinkParams,
    /// Host forwarding latency between switches, in cycles.
    pub host_latency: u64,
    /// Switch-bus bandwidth, bytes/cycle.
    pub switch_bus_bytes_per_cycle: f64,
    /// Switch port-to-port latency, cycles.
    pub switch_latency: u64,
    /// DRAM refresh modelling.
    pub refresh_enabled: bool,
    /// DRAM controller queue depth.
    pub dimm_queue_depth: usize,
    /// Striping granularity for the vanilla (locality-blind) mapping.
    pub vanilla_stripe_bytes: u64,
    /// Striping granularity for the optimised mapping.
    pub opt_stripe_bytes: u64,
    /// Data-packer flush age in cycles.
    pub packer_flush_age: u64,
    /// DIMM geometry (simulation-scaled by default).
    pub geometry: DimmGeometry,
    /// The optimisation toggles.
    pub opts: Optimizations,
    /// Fault injection / RAS model. `None` (the default) is the
    /// pristine machine: no fault state is allocated and the hot path
    /// pays nothing.
    pub faults: Option<FaultsConfig>,
}

impl BeaconConfig {
    /// Paper Table I for BEACON-D: 2 switches × 2 CXLG-DIMMs × 128 PEs
    /// (512 total), 2 unmodified CXL-DIMMs per switch.
    pub fn paper_d(app: AppKind) -> Self {
        BeaconConfig {
            variant: BeaconVariant::D,
            switches: 2,
            cxlg_per_switch: 2,
            unmodified_per_switch: 2,
            pes_per_module: 128,
            pe_latency: app.pe_latency_cycles(),
            dimm_link: LinkParams::cxl_x8(),
            uplink: LinkParams::cxl_x8(),
            host_latency: 60,
            switch_bus_bytes_per_cycle: 512.0,
            switch_latency: 20,
            refresh_enabled: true,
            dimm_queue_depth: 192,
            vanilla_stripe_bytes: 1024,
            opt_stripe_bytes: 512,
            packer_flush_age: 8,
            geometry: DimmGeometry::sim_scaled(),
            opts: Optimizations::vanilla(),
            faults: None,
        }
    }

    /// Paper Table I for BEACON-S: 2 switches × 256 PEs, 4 unmodified
    /// CXL-DIMMs per switch (no CXLG-DIMMs at all).
    pub fn paper_s(app: AppKind) -> Self {
        let mut cfg = BeaconConfig::paper_d(app);
        cfg.variant = BeaconVariant::S;
        cfg.cxlg_per_switch = 0;
        cfg.unmodified_per_switch = 4;
        cfg.pes_per_module = 256;
        cfg
    }

    /// Paper configuration for a variant.
    pub fn paper(variant: BeaconVariant, app: AppKind) -> Self {
        match variant {
            BeaconVariant::D => BeaconConfig::paper_d(app),
            BeaconVariant::S => BeaconConfig::paper_s(app),
        }
    }

    /// Applies an optimisation point.
    pub fn with_opts(mut self, opts: Optimizations) -> Self {
        self.opts = opts;
        self
    }

    /// Installs a fault schedule.
    pub fn with_faults(mut self, faults: FaultsConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// DIMM slots per switch (CXLG first, then unmodified).
    pub fn slots_per_switch(&self) -> u32 {
        self.cxlg_per_switch + self.unmodified_per_switch
    }

    /// Total DIMMs in the pool.
    pub fn total_dimms(&self) -> u32 {
        self.switches * self.slots_per_switch()
    }

    /// True when slot `slot` of any switch is a CXLG-DIMM.
    pub fn slot_is_cxlg(&self, slot: u32) -> bool {
        slot < self.cxlg_per_switch
    }

    /// Nodes of all CXLG-DIMMs.
    pub fn cxlg_nodes(&self) -> Vec<NodeId> {
        (0..self.switches)
            .flat_map(|s| (0..self.cxlg_per_switch).map(move |d| NodeId::dimm(s, d)))
            .collect()
    }

    /// Nodes of all unmodified CXL-DIMMs.
    pub fn unmodified_nodes(&self) -> Vec<NodeId> {
        (0..self.switches)
            .flat_map(|s| {
                (self.cxlg_per_switch..self.slots_per_switch()).map(move |d| NodeId::dimm(s, d))
            })
            .collect()
    }

    /// Every DIMM node in the pool.
    pub fn all_dimm_nodes(&self) -> Vec<NodeId> {
        (0..self.switches)
            .flat_map(|s| (0..self.slots_per_switch()).map(move |d| NodeId::dimm(s, d)))
            .collect()
    }

    /// Number of compute modules (CXLG-DIMMs for D, switches for S).
    pub fn compute_modules(&self) -> u32 {
        match self.variant {
            BeaconVariant::D => self.switches * self.cxlg_per_switch,
            BeaconVariant::S => self.switches,
        }
    }

    /// Total PEs in the system.
    pub fn total_pes(&self) -> usize {
        self.compute_modules() as usize * self.pes_per_module
    }

    /// Validates structural consistency.
    ///
    /// # Errors
    /// Describes the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.switches == 0 {
            return Err("need at least one switch".into());
        }
        match self.variant {
            BeaconVariant::D if self.cxlg_per_switch == 0 => {
                Err("BEACON-D needs CXLG-DIMMs".into())
            }
            BeaconVariant::S if self.cxlg_per_switch != 0 => {
                Err("BEACON-S has no CXLG-DIMMs".into())
            }
            _ if self.total_dimms() == 0 => Err("pool has no DIMMs".into()),
            _ if self.pes_per_module == 0 => Err("need PEs".into()),
            _ => match &self.faults {
                Some(f) if f.dimm_fail_at > 0 && f.dimm_fail_switch >= self.switches => {
                    Err("failing DIMM names a switch outside the pool".into())
                }
                Some(f)
                    if f.dimm_fail_at > 0
                        && (f.dimm_fail_slot >= self.slots_per_switch()
                            || self.slot_is_cxlg(f.dimm_fail_slot)) =>
                {
                    Err("failing DIMM must be an unmodified slot".into())
                }
                _ => Ok(()),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_d_matches_table1() {
        let cfg = BeaconConfig::paper_d(AppKind::FmSeeding);
        assert_eq!(cfg.total_pes(), 512);
        assert_eq!(cfg.compute_modules(), 4);
        assert_eq!(cfg.total_dimms(), 8);
        assert_eq!(cfg.pe_latency, 16);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn paper_s_matches_table1() {
        let cfg = BeaconConfig::paper_s(AppKind::KmerCounting);
        assert_eq!(cfg.total_pes(), 512);
        assert_eq!(cfg.compute_modules(), 2);
        assert_eq!(cfg.total_dimms(), 8);
        assert_eq!(cfg.pe_latency, 59);
        assert!(cfg.cxlg_nodes().is_empty());
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn node_partition_is_complete() {
        let cfg = BeaconConfig::paper_d(AppKind::FmSeeding);
        let mut all = cfg.cxlg_nodes();
        all.extend(cfg.unmodified_nodes());
        all.sort();
        let mut expected = cfg.all_dimm_nodes();
        expected.sort();
        assert_eq!(all, expected);
    }

    #[test]
    fn ladder_order_and_length() {
        let d_fm = Optimizations::ladder(BeaconVariant::D, AppKind::FmSeeding);
        assert_eq!(d_fm.len(), 5);
        assert_eq!(d_fm[0].0, "CXL-vanilla");
        assert_eq!(d_fm[4].0, "+multi-chip coalescing");

        let s_fm = Optimizations::ladder(BeaconVariant::S, AppKind::FmSeeding);
        assert_eq!(s_fm.len(), 4);

        let s_kmer = Optimizations::ladder(BeaconVariant::S, AppKind::KmerCounting);
        assert_eq!(s_kmer.last().unwrap().0, "+single-pass k-mer");

        let d_kmer = Optimizations::ladder(BeaconVariant::D, AppKind::KmerCounting);
        assert_eq!(d_kmer.len(), 4);
    }

    #[test]
    fn ladder_is_cumulative() {
        let pts = Optimizations::ladder(BeaconVariant::D, AppKind::FmSeeding);
        assert!(!pts[0].1.data_packing);
        assert!(pts[1].1.data_packing && !pts[1].1.mem_access_opt);
        assert!(pts[2].1.mem_access_opt && !pts[2].1.placement_mapping);
        assert!(pts[3].1.placement_mapping);
        assert!(pts[4].1.multi_chip_coalescing.is_some());
    }

    #[test]
    fn full_matches_ladder_top() {
        let pts = Optimizations::ladder(BeaconVariant::D, AppKind::FmSeeding);
        assert_eq!(
            pts.last().unwrap().1,
            Optimizations::full(BeaconVariant::D, AppKind::FmSeeding)
        );
    }

    #[test]
    fn invalid_configs_detected() {
        let mut cfg = BeaconConfig::paper_d(AppKind::FmSeeding);
        cfg.cxlg_per_switch = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = BeaconConfig::paper_s(AppKind::FmSeeding);
        cfg.cxlg_per_switch = 1;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn fault_configs_validate() {
        let cfg = BeaconConfig::paper_d(AppKind::FmSeeding);
        assert!(FaultsConfig::quiet(1).is_quiet());
        assert!(!FaultsConfig::noisy(1, 5.0).is_quiet());

        // Slot 2 is unmodified on paper-D: fine.
        let ok = cfg.with_faults(FaultsConfig::dimm_loss(1, 0, 2, 1000));
        assert!(ok.validate().is_ok());
        // Slot 0 is a CXLG-DIMM: rejected.
        let bad = cfg.with_faults(FaultsConfig::dimm_loss(1, 0, 0, 1000));
        assert!(bad.validate().is_err());
        // Switch out of range: rejected.
        let bad = cfg.with_faults(FaultsConfig::dimm_loss(1, 9, 2, 1000));
        assert!(bad.validate().is_err());
        // fail_at == 0 means "never": target fields ignored.
        let ok = cfg.with_faults(FaultsConfig::dimm_loss(1, 9, 0, 0));
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn slot_classification() {
        let cfg = BeaconConfig::paper_d(AppKind::FmSeeding);
        assert!(cfg.slot_is_cxlg(0));
        assert!(cfg.slot_is_cxlg(1));
        assert!(!cfg.slot_is_cxlg(2));
        assert!(!cfg.slot_is_cxlg(3));
    }
}
