//! Deterministic checkpoint/restore for a whole [`BeaconSystem`].
//!
//! A snapshot is a self-describing container:
//!
//! * a one-line JSON header (magic, format version, capture cycle and
//!   the headline topology — enough to identify a file without decoding
//!   the body), then
//! * a binary body in [`beacon_sim::snap`] wire format: the full
//!   configuration, the capture clock, the pool allocator, the region
//!   maps, the staged host traffic and one component section per
//!   switch subtree.
//!
//! Restore is *restore-into*: [`BeaconSystem::resume`] rebuilds the
//! topology from the decoded configuration via [`BeaconSystem::new`]
//! (re-deriving every static — trace labels, fault streams, the
//! graceful-degradation plan) and then overwrites the dynamic state of
//! every component from the body. A resumed system continues
//! **bit-identically**: same [`RunResult`](beacon_accel::result::RunResult)
//! digest as the uninterrupted run, across thread counts and with
//! event-horizon skipping on or off (the conformance suite in
//! `tests/snapshot.rs` holds that contract).
//!
//! Digest-excluded state — attribution aggregates, journey stamps,
//! queue-depth integrals, trace rings, horizon caches, probe-throttle
//! counters — is deliberately *not* captured: it restores empty (or
//! deterministically reset), exactly as DESIGN.md §14 specifies.

use beacon_sim::cycle::Cycle;
use beacon_sim::json::JsonValue;
use beacon_sim::snap::{SnapError, SnapReader, SnapWriter};

use beacon_accel::translate::RegionMap;
use beacon_cxl::params::LinkParams;

use crate::allocator::PoolAllocator;
use crate::config::{BeaconConfig, BeaconVariant, FaultsConfig, Optimizations};
use crate::mmf::MemoryLayout;
use crate::system::BeaconSystem;

/// First bytes of every snapshot file (inside the JSON header).
pub const MAGIC: &str = "BEACONSNAP";
/// Container format version; bumped on any incompatible layout change.
pub const FORMAT_VERSION: u16 = 1;

// ----- configuration codec --------------------------------------------

fn put_link(w: &mut SnapWriter, l: &LinkParams) {
    w.f64(l.bytes_per_cycle);
    w.u64(l.latency_cycles);
    w.usize(l.queue_depth);
    w.u32(l.slot_bytes);
}

fn get_link(r: &mut SnapReader<'_>) -> Result<LinkParams, SnapError> {
    Ok(LinkParams {
        bytes_per_cycle: r.f64()?,
        latency_cycles: r.u64()?,
        queue_depth: r.usize()?,
        slot_bytes: r.u32()?,
    })
}

fn put_opts(w: &mut SnapWriter, o: &Optimizations) {
    w.bool(o.data_packing);
    w.bool(o.mem_access_opt);
    w.bool(o.placement_mapping);
    match o.multi_chip_coalescing {
        None => w.bool(false),
        Some(c) => {
            w.bool(true);
            w.u32(c);
        }
    }
    w.bool(o.single_pass_kmer);
    w.bool(o.ideal_comm);
}

fn get_opts(r: &mut SnapReader<'_>) -> Result<Optimizations, SnapError> {
    Ok(Optimizations {
        data_packing: r.bool()?,
        mem_access_opt: r.bool()?,
        placement_mapping: r.bool()?,
        multi_chip_coalescing: if r.bool()? { Some(r.u32()?) } else { None },
        single_pass_kmer: r.bool()?,
        ideal_comm: r.bool()?,
    })
}

fn put_faults(w: &mut SnapWriter, f: &FaultsConfig) {
    w.u64(f.seed);
    w.f64(f.link_crc_per_mcycle);
    w.f64(f.port_flap_per_mcycle);
    w.u64(f.flap_down_cycles);
    w.f64(f.dimm_ue_per_mcycle);
    w.u64(f.dimm_fail_at);
    w.u32(f.dimm_fail_switch);
    w.u32(f.dimm_fail_slot);
    w.u64(f.horizon);
}

fn get_faults(r: &mut SnapReader<'_>) -> Result<FaultsConfig, SnapError> {
    Ok(FaultsConfig {
        seed: r.u64()?,
        link_crc_per_mcycle: r.f64()?,
        port_flap_per_mcycle: r.f64()?,
        flap_down_cycles: r.u64()?,
        dimm_ue_per_mcycle: r.f64()?,
        dimm_fail_at: r.u64()?,
        dimm_fail_switch: r.u32()?,
        dimm_fail_slot: r.u32()?,
        horizon: r.u64()?,
    })
}

/// Encodes a full [`BeaconConfig`] (floats as exact bit patterns, so
/// the round trip is identity).
pub fn put_config(w: &mut SnapWriter, cfg: &BeaconConfig) {
    w.u8(match cfg.variant {
        BeaconVariant::D => 0,
        BeaconVariant::S => 1,
    });
    w.u32(cfg.switches);
    w.u32(cfg.cxlg_per_switch);
    w.u32(cfg.unmodified_per_switch);
    w.usize(cfg.pes_per_module);
    w.u32(cfg.pe_latency);
    put_link(w, &cfg.dimm_link);
    put_link(w, &cfg.uplink);
    w.u64(cfg.host_latency);
    w.f64(cfg.switch_bus_bytes_per_cycle);
    w.u64(cfg.switch_latency);
    w.bool(cfg.refresh_enabled);
    w.usize(cfg.dimm_queue_depth);
    w.u64(cfg.vanilla_stripe_bytes);
    w.u64(cfg.opt_stripe_bytes);
    w.u64(cfg.packer_flush_age);
    beacon_dram::snap::put_geometry(w, &cfg.geometry);
    put_opts(w, &cfg.opts);
    match &cfg.faults {
        None => w.bool(false),
        Some(f) => {
            w.bool(true);
            put_faults(w, f);
        }
    }
}

/// Decodes a [`BeaconConfig`] written by [`put_config`].
///
/// # Errors
/// [`SnapError::Corrupt`] on unknown enum tags; any read error on short
/// input.
pub fn get_config(r: &mut SnapReader<'_>) -> Result<BeaconConfig, SnapError> {
    let variant = match r.u8()? {
        0 => BeaconVariant::D,
        1 => BeaconVariant::S,
        t => return Err(SnapError::Corrupt(format!("unknown BeaconVariant tag {t}"))),
    };
    Ok(BeaconConfig {
        variant,
        switches: r.u32()?,
        cxlg_per_switch: r.u32()?,
        unmodified_per_switch: r.u32()?,
        pes_per_module: r.usize()?,
        pe_latency: r.u32()?,
        dimm_link: get_link(r)?,
        uplink: get_link(r)?,
        host_latency: r.u64()?,
        switch_bus_bytes_per_cycle: r.f64()?,
        switch_latency: r.u64()?,
        refresh_enabled: r.bool()?,
        dimm_queue_depth: r.usize()?,
        vanilla_stripe_bytes: r.u64()?,
        opt_stripe_bytes: r.u64()?,
        packer_flush_age: r.u64()?,
        geometry: beacon_dram::snap::get_geometry(r)?,
        opts: get_opts(r)?,
        faults: if r.bool()? {
            Some(get_faults(r)?)
        } else {
            None
        },
    })
}

// ----- container ------------------------------------------------------

fn header_line(cfg: &BeaconConfig, cycle: Cycle, body_bytes: usize) -> String {
    // Hand-formatted with a fixed key order so the header bytes are a
    // pure function of (config, cycle, body): golden-file stable.
    format!(
        concat!(
            "{{\"magic\":\"{}\",\"format\":{},\"cycle\":{},",
            "\"variant\":\"{}\",\"switches\":{},\"cxlg_per_switch\":{},",
            "\"unmodified_per_switch\":{},\"pes_per_module\":{},",
            "\"fault_seed\":{},\"body_bytes\":{}}}\n"
        ),
        MAGIC,
        FORMAT_VERSION,
        cycle.as_u64(),
        match cfg.variant {
            BeaconVariant::D => "D",
            BeaconVariant::S => "S",
        },
        cfg.switches,
        cfg.cxlg_per_switch,
        cfg.unmodified_per_switch,
        cfg.pes_per_module,
        cfg.faults.as_ref().map_or(0, |f| f.seed),
        body_bytes,
    )
}

fn header_u64(h: &JsonValue, key: &str) -> Result<u64, SnapError> {
    h.get(key)
        .and_then(JsonValue::as_f64)
        .map(|v| v as u64)
        .ok_or_else(|| SnapError::Header(format!("missing numeric header field `{key}`")))
}

impl BeaconSystem {
    /// Serialises the complete dynamic state of this system at its
    /// current clock into a self-describing snapshot. Valid at any
    /// point the system is between ticks — before a run, after
    /// [`BeaconSystem::run_to`] paused at an epoch boundary, or after a
    /// drained run.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.section("cfg", 1);
        put_config(&mut w, &self.cfg);
        w.section("clk", 1);
        w.cycle(self.clock);
        w.cycle(self.finished_at);
        w.u64(self.rmw_alu_cycles);
        w.section("alloc", 1);
        self.allocator.snap_into(&mut w);
        w.section("maps", 1);
        w.usize(self.maps.len());
        for map in &self.maps {
            map.snap_into(&mut w);
        }
        w.section("host", 1);
        w.usize(self.host_stage.len());
        for (ready, bundle) in &self.host_stage {
            w.cycle(*ready);
            beacon_cxl::snap::put_bundle(&mut w, bundle);
        }
        for sw in &self.switches {
            w.component(sw);
        }
        w.section("end", 1);
        let body = w.into_bytes();
        let mut out = header_line(&self.cfg, self.clock, body.len()).into_bytes();
        out.extend_from_slice(&body);
        out
    }

    /// Reconstructs a system from snapshot bytes; the result continues
    /// the captured run bit-identically (call [`BeaconSystem::run`] to
    /// complete it).
    ///
    /// # Errors
    /// Typed [`SnapError`]s — never panics on malformed input: bad
    /// magic, unsupported format or component versions, truncation,
    /// corrupt encodings, trailing bytes.
    pub fn resume(bytes: &[u8]) -> Result<Self, SnapError> {
        Self::resume_impl(bytes, None)
    }

    /// Like [`BeaconSystem::resume`], but additionally rejects (with
    /// [`SnapError::Topology`]) a snapshot whose configuration differs
    /// from `expect` — the guard a driver uses when a snapshot file
    /// must belong to the experiment it is resuming.
    ///
    /// # Errors
    /// Everything [`BeaconSystem::resume`] returns, plus the topology
    /// mismatch.
    pub fn resume_expecting(bytes: &[u8], expect: &BeaconConfig) -> Result<Self, SnapError> {
        Self::resume_impl(bytes, Some(expect))
    }

    fn resume_impl(bytes: &[u8], expect: Option<&BeaconConfig>) -> Result<Self, SnapError> {
        // 1. The header line.
        let nl = bytes
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| SnapError::Header("no header line (missing newline)".into()))?;
        let text = std::str::from_utf8(&bytes[..nl])
            .map_err(|e| SnapError::Header(format!("header is not UTF-8: {e}")))?;
        if !text.contains(MAGIC) {
            return Err(SnapError::BadMagic(
                text.chars().take(24).collect::<String>(),
            ));
        }
        let header = JsonValue::parse(text)
            .map_err(|e| SnapError::Header(format!("header is not valid JSON: {e}")))?;
        match header.get("magic").and_then(JsonValue::as_str) {
            Some(m) if m == MAGIC => {}
            other => return Err(SnapError::BadMagic(other.unwrap_or("<none>").to_owned())),
        }
        let format = header_u64(&header, "format")? as u16;
        if format != FORMAT_VERSION {
            return Err(SnapError::FormatVersion {
                found: u32::from(format),
                supported: u32::from(FORMAT_VERSION),
            });
        }
        let body_bytes = header_u64(&header, "body_bytes")? as usize;
        let body = &bytes[nl + 1..];
        if body.len() < body_bytes {
            return Err(SnapError::Truncated {
                wanted: body_bytes,
                available: body.len(),
            });
        }
        if body.len() > body_bytes {
            return Err(SnapError::TrailingBytes(body.len() - body_bytes));
        }

        // 2. Configuration, and the rebuildable layout inputs.
        let mut r = SnapReader::new(body);
        r.section("cfg", 1)?;
        let cfg = get_config(&mut r)?;
        if let Some(e) = expect {
            let mut got = SnapWriter::new();
            put_config(&mut got, &cfg);
            let mut want = SnapWriter::new();
            put_config(&mut want, e);
            if got.into_bytes() != want.into_bytes() {
                return Err(SnapError::Topology(format!(
                    "snapshot is for {} × {} switches ({} CXLG + {} unmodified per \
                     switch), which does not match the expected configuration",
                    cfg.variant.label(),
                    cfg.switches,
                    cfg.cxlg_per_switch,
                    cfg.unmodified_per_switch,
                )));
            }
        }
        cfg.validate()
            .map_err(|e| SnapError::Corrupt(format!("snapshot configuration invalid: {e}")))?;
        r.section("clk", 1)?;
        let clock = r.cycle()?;
        let finished_at = r.cycle()?;
        let rmw_alu_cycles = r.u64()?;
        r.section("alloc", 1)?;
        let allocator = PoolAllocator::from_snap(&mut r)?;
        r.section("maps", 1)?;
        let n_maps = r.seq_len()?;
        if n_maps != cfg.compute_modules() as usize {
            return Err(SnapError::Topology(format!(
                "snapshot has {n_maps} region maps, configuration needs {}",
                cfg.compute_modules()
            )));
        }
        let mut maps = Vec::with_capacity(n_maps);
        for _ in 0..n_maps {
            maps.push(RegionMap::from_snap(&mut r)?);
        }

        // 3. Rebuild the topology (statics re-derived from the config),
        // then overwrite its dynamic state.
        let layout = MemoryLayout {
            maps,
            cxlg_mode: crate::mmf::cxlg_mode_for(&cfg),
            allocator,
        };
        let mut sys = BeaconSystem::new(cfg, layout);
        sys.reset_host_for_restore();
        r.section("host", 1)?;
        let n = r.seq_len()?;
        for _ in 0..n {
            let ready = r.cycle()?;
            let bundle = beacon_cxl::snap::get_bundle(&mut r)?;
            sys.host_stage.push_back((ready, bundle));
        }
        for sw in &mut sys.switches {
            r.component(sw)?;
        }
        r.section("end", 1)?;
        r.finish()?;
        sys.clock = clock;
        sys.finished_at = finished_at;
        sys.rmw_alu_cycles = rmw_alu_cycles;
        Ok(sys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mmf::{build_layout, LayoutSpec};
    use beacon_genomics::genome::{Genome, GenomeId};
    use beacon_genomics::prelude::FmIndex;
    use beacon_genomics::reads::ReadSampler;
    use beacon_genomics::trace::{AppKind, Region, TaskTrace};

    fn workload(n: usize) -> (Vec<TaskTrace>, u64) {
        let g = Genome::synthetic(GenomeId::Pt, 3000, 5);
        let idx = FmIndex::build(g.sequence());
        let mut sampler = ReadSampler::new(&g, 24, 0.0, 9);
        let traces = (0..n)
            .map(|_| idx.trace_search(sampler.next_read().bases()))
            .collect();
        (traces, idx.index_bytes())
    }

    fn build(variant: BeaconVariant) -> BeaconSystem {
        let app = AppKind::FmSeeding;
        let mut cfg =
            BeaconConfig::paper(variant, app).with_opts(Optimizations::full(variant, app));
        cfg.pes_per_module = 8;
        let (traces, bytes) = workload(12);
        let layout = build_layout(&cfg, &[LayoutSpec::shared_random(Region::FmIndex, bytes)]);
        let mut sys = BeaconSystem::new(cfg, layout);
        sys.submit_round_robin(traces);
        sys
    }

    #[test]
    fn config_roundtrips_exactly() {
        for cfg in [
            BeaconConfig::paper_d(AppKind::FmSeeding),
            BeaconConfig::paper_s(AppKind::KmerCounting).with_faults(FaultsConfig::noisy(7, 3.5)),
            BeaconConfig::paper_d(AppKind::PreAlignment)
                .with_opts(Optimizations::full(BeaconVariant::D, AppKind::FmSeeding))
                .with_faults(FaultsConfig::dimm_loss(42, 1, 2, 9999)),
        ] {
            let mut w = SnapWriter::new();
            put_config(&mut w, &cfg);
            let bytes = w.into_bytes();
            let mut r = SnapReader::new(&bytes);
            let back = get_config(&mut r).unwrap();
            r.finish().unwrap();
            assert_eq!(back, cfg);
        }
    }

    #[test]
    fn fresh_snapshot_resumes_to_identical_run() {
        let golden = build(BeaconVariant::D).run();
        let sys = build(BeaconVariant::D);
        let bytes = sys.snapshot();
        let mut resumed = BeaconSystem::resume(&bytes).unwrap();
        let got = resumed.run();
        assert_eq!(
            got.digest(),
            golden.digest(),
            "{}",
            got.diff(&golden).unwrap_or_default()
        );
    }

    #[test]
    fn midrun_snapshot_resumes_bit_identically() {
        let golden = build(BeaconVariant::S).run();
        let mut sys = build(BeaconVariant::S);
        assert!(!sys.run_to(golden.cycles / 2), "should pause mid-run");
        let bytes = sys.snapshot();
        let mut resumed = BeaconSystem::resume(&bytes).unwrap();
        let got = resumed.run();
        assert_eq!(
            got.digest(),
            golden.digest(),
            "{}",
            got.diff(&golden).unwrap_or_default()
        );
    }

    #[test]
    fn wrong_topology_is_rejected_typed() {
        let sys = build(BeaconVariant::D);
        let bytes = sys.snapshot();
        let other = BeaconConfig::paper_s(AppKind::FmSeeding);
        match BeaconSystem::resume_expecting(&bytes, &other) {
            Err(SnapError::Topology(_)) => {}
            other => panic!("expected Topology error, got {other:?}"),
        }
        // The matching config passes.
        BeaconSystem::resume_expecting(&bytes, sys.config()).unwrap();
    }

    #[test]
    fn header_is_greppable_and_parsable() {
        let sys = build(BeaconVariant::D);
        let bytes = sys.snapshot();
        let nl = bytes.iter().position(|&b| b == b'\n').unwrap();
        let text = std::str::from_utf8(&bytes[..nl]).unwrap();
        assert!(text.starts_with("{\"magic\":\"BEACONSNAP\""));
        let h = JsonValue::parse(text).unwrap();
        assert_eq!(h.get("variant").unwrap().as_str().unwrap(), "D");
        assert_eq!(h.get("cycle").unwrap().as_f64().unwrap(), 0.0);
        assert_eq!(
            h.get("body_bytes").unwrap().as_f64().unwrap() as usize,
            bytes.len() - nl - 1
        );
    }

    #[test]
    fn truncated_and_trailing_bytes_are_typed_errors() {
        let sys = build(BeaconVariant::D);
        let bytes = sys.snapshot();
        assert!(matches!(
            BeaconSystem::resume(&bytes[..bytes.len() - 10]),
            Err(SnapError::Truncated { .. })
        ));
        let mut padded = bytes.clone();
        padded.extend_from_slice(b"junk");
        assert!(matches!(
            BeaconSystem::resume(&padded),
            Err(SnapError::TrailingBytes(4))
        ));
        assert!(matches!(
            BeaconSystem::resume(b"not a snapshot"),
            Err(SnapError::Header(_))
        ));
        assert!(matches!(
            BeaconSystem::resume(b"{\"magic\":\"OTHER\"}\n"),
            Err(SnapError::BadMagic(_))
        ));
    }

    #[test]
    fn future_format_version_is_rejected() {
        let sys = build(BeaconVariant::D);
        let bytes = sys.snapshot();
        let nl = bytes.iter().position(|&b| b == b'\n').unwrap();
        let text = std::str::from_utf8(&bytes[..nl]).unwrap();
        let bumped = text.replace("\"format\":1,", "\"format\":99,");
        let mut forged = bumped.into_bytes();
        forged.push(b'\n');
        forged.extend_from_slice(&bytes[nl + 1..]);
        assert!(matches!(
            BeaconSystem::resume(&forged),
            Err(SnapError::FormatVersion {
                found: 99,
                supported: 1
            })
        ));
    }
}
