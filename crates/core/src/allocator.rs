//! The pool allocator: on-demand memory allocation and de-allocation
//! over the CXL pool (paper §IV-C, "Memory Allocation" / "Memory
//! De-allocation").
//!
//! The memory-management framework manages the pool at DRAM-row
//! granularity (rows are the isolation unit of every interleave — see
//! `beacon-accel::translate::Placement::row_offset`). Each DIMM has a
//! first-fit free list of row ranges; an allocation reserves the same
//! row range on every home DIMM so one `row_offset` serves the whole
//! placement, and a de-allocation returns the range (coalescing
//! neighbours).

use std::collections::BTreeMap;
use std::fmt;

use beacon_cxl::message::NodeId;
use beacon_dram::params::DimmGeometry;
use beacon_sim::snap::{SnapError, SnapReader, SnapWriter};
use serde::{Deserialize, Serialize};

/// Why an allocation failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocError {
    /// No aligned free range of the requested size exists on every home.
    OutOfRows {
        /// Rows requested per home DIMM.
        requested: u64,
    },
    /// A node in the request is not part of this pool.
    UnknownNode(NodeId),
    /// A node in the request has been excluded (failed DIMM).
    NodeExcluded(NodeId),
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfRows { requested } => {
                write!(f, "no common free range of {requested} rows")
            }
            AllocError::UnknownNode(n) => write!(f, "node {n:?} is not in the pool"),
            AllocError::NodeExcluded(n) => write!(f, "node {n:?} is excluded (failed)"),
        }
    }
}

impl std::error::Error for AllocError {}

/// A granted allocation: the row range shared by every home DIMM.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowGrant {
    /// Homes holding the region.
    pub homes: Vec<NodeId>,
    /// First row of the grant.
    pub base_row: u64,
    /// Rows granted per home.
    pub rows: u64,
}

/// First-fit free list of `[start, start+len)` row ranges for one DIMM.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct FreeList {
    ranges: Vec<(u64, u64)>,
}

impl FreeList {
    fn new(rows: u64) -> Self {
        FreeList {
            ranges: vec![(0, rows)],
        }
    }

    fn free_rows(&self) -> u64 {
        self.ranges.iter().map(|&(_, l)| l).sum()
    }

    /// True when `[base, base+rows)` is entirely free.
    fn covers(&self, base: u64, rows: u64) -> bool {
        self.ranges
            .iter()
            .any(|&(s, l)| s <= base && base + rows <= s + l)
    }

    fn take(&mut self, base: u64, rows: u64) {
        debug_assert!(self.covers(base, rows));
        let idx = self
            .ranges
            .iter()
            .position(|&(s, l)| s <= base && base + rows <= s + l)
            .expect("covered");
        let (s, l) = self.ranges.remove(idx);
        if base > s {
            self.ranges.insert(idx, (s, base - s));
        }
        let tail_start = base + rows;
        if tail_start < s + l {
            let insert_at = self
                .ranges
                .iter()
                .position(|&(rs, _)| rs > tail_start)
                .unwrap_or(self.ranges.len());
            self.ranges
                .insert(insert_at, (tail_start, s + l - tail_start));
        }
    }

    fn release(&mut self, base: u64, rows: u64) {
        let at = self
            .ranges
            .iter()
            .position(|&(s, _)| s > base)
            .unwrap_or(self.ranges.len());
        self.ranges.insert(at, (base, rows));
        // Coalesce neighbours.
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(self.ranges.len());
        for &(s, l) in &self.ranges {
            match merged.last_mut() {
                Some((ms, ml)) if *ms + *ml >= s => {
                    debug_assert!(*ms + *ml == s, "double free of rows {s}..");
                    *ml += l;
                }
                _ => merged.push((s, l)),
            }
        }
        self.ranges = merged;
    }
}

/// Row-granular allocator over the pool's DIMMs.
///
/// ```
/// use beacon_core::allocator::PoolAllocator;
/// use beacon_cxl::message::NodeId;
/// use beacon_dram::params::DimmGeometry;
///
/// let nodes = vec![NodeId::dimm(0, 0), NodeId::dimm(0, 1)];
/// let mut pool = PoolAllocator::new(DimmGeometry::sim_scaled(), &nodes);
/// let grant = pool.allocate(&nodes, 1 << 20, 1).unwrap();
/// pool.deallocate(&grant).unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolAllocator {
    geometry: DimmGeometry,
    free: BTreeMap<NodeId, FreeList>,
    /// Failed DIMMs, sorted; allocations never land here again.
    excluded: Vec<NodeId>,
}

impl PoolAllocator {
    /// Creates an allocator with every row of every node free.
    pub fn new(geometry: DimmGeometry, nodes: &[NodeId]) -> Self {
        PoolAllocator {
            geometry,
            free: nodes
                .iter()
                .map(|&n| (n, FreeList::new(geometry.rows)))
                .collect(),
            excluded: Vec::new(),
        }
    }

    /// RAS: removes a failed DIMM from the allocatable pool. Returns
    /// `(free_bytes, used_bytes)` lost with it — the unallocated
    /// capacity and the already-allocated bytes whose data must be
    /// re-homed. `None` when the node is unknown or already excluded.
    pub fn exclude(&mut self, node: NodeId) -> Option<(u64, u64)> {
        if self.is_excluded(node) {
            return None;
        }
        let free = self.free_bytes(node)?;
        let capacity = self.geometry.rows * self.row_sweep_bytes();
        let at = self.excluded.partition_point(|&n| n < node);
        self.excluded.insert(at, node);
        Some((free, capacity - free))
    }

    /// True when `node` has been excluded by [`PoolAllocator::exclude`].
    pub fn is_excluded(&self, node: NodeId) -> bool {
        self.excluded.binary_search(&node).is_ok()
    }

    /// Bytes one row index covers on one DIMM.
    pub fn row_sweep_bytes(&self) -> u64 {
        (self.geometry.ranks * self.geometry.chips_per_rank * self.geometry.banks) as u64
            * self.geometry.row_bytes_per_chip as u64
    }

    /// Rows needed per home for `per_node_bytes`, scaled by the
    /// sparse-row `window`.
    pub fn rows_needed(&self, per_node_bytes: u64, window: u64) -> u64 {
        per_node_bytes.div_ceil(self.row_sweep_bytes()).max(1) * window
    }

    /// Allocates `per_node_bytes` (× `window` sparsity) on every node of
    /// `homes` at a common base row.
    ///
    /// # Errors
    /// [`AllocError::OutOfRows`] when no common range fits;
    /// [`AllocError::UnknownNode`] for nodes outside the pool.
    pub fn allocate(
        &mut self,
        homes: &[NodeId],
        per_node_bytes: u64,
        window: u64,
    ) -> Result<RowGrant, AllocError> {
        let rows = self.rows_needed(per_node_bytes, window);
        for n in homes {
            if !self.free.contains_key(n) {
                return Err(AllocError::UnknownNode(*n));
            }
            if self.is_excluded(*n) {
                return Err(AllocError::NodeExcluded(*n));
            }
        }
        // First-fit over the first home's candidates, then check the rest.
        let first = &self.free[&homes[0]];
        let candidates: Vec<u64> = first
            .ranges
            .iter()
            .filter(|&&(_, l)| l >= rows)
            .map(|&(s, _)| s)
            .collect();
        let base = candidates
            .into_iter()
            .find(|&b| homes.iter().all(|n| self.free[n].covers(b, rows)));
        let Some(base_row) = base else {
            return Err(AllocError::OutOfRows { requested: rows });
        };
        for n in homes {
            self.free.get_mut(n).expect("checked").take(base_row, rows);
        }
        Ok(RowGrant {
            homes: homes.to_vec(),
            base_row,
            rows,
        })
    }

    /// Returns a grant to the pool.
    ///
    /// # Errors
    /// [`AllocError::UnknownNode`] when the grant references a node
    /// outside this pool.
    ///
    /// # Panics
    /// Panics (debug) on double free.
    pub fn deallocate(&mut self, grant: &RowGrant) -> Result<(), AllocError> {
        for n in &grant.homes {
            if !self.free.contains_key(n) {
                return Err(AllocError::UnknownNode(*n));
            }
        }
        for n in &grant.homes {
            self.free
                .get_mut(n)
                .expect("checked")
                .release(grant.base_row, grant.rows);
        }
        Ok(())
    }

    /// Free rows remaining on `node` (`None` for unknown nodes).
    pub fn free_rows(&self, node: NodeId) -> Option<u64> {
        self.free.get(&node).map(FreeList::free_rows)
    }

    /// The pool's nodes in sorted order, excluded DIMMs included.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.free.keys().copied()
    }

    /// Total row capacity of the pool's live (non-excluded) nodes —
    /// the service-level accounting denominator.
    pub fn total_capacity_rows(&self) -> u64 {
        self.free.keys().filter(|n| !self.is_excluded(**n)).count() as u64 * self.geometry.rows
    }

    /// Total free rows across the pool's live (non-excluded) nodes.
    pub fn total_free_rows(&self) -> u64 {
        self.free
            .iter()
            .filter(|(n, _)| !self.is_excluded(**n))
            .map(|(_, l)| l.free_rows())
            .sum()
    }

    /// Total rows currently reserved on live (non-excluded) nodes.
    pub fn total_used_rows(&self) -> u64 {
        self.total_capacity_rows() - self.total_free_rows()
    }

    /// Free bytes remaining on `node`.
    pub fn free_bytes(&self, node: NodeId) -> Option<u64> {
        self.free_rows(node).map(|r| r * self.row_sweep_bytes())
    }

    /// Registers additional DIMMs (on-demand memory expansion with
    /// unmodified CXL-DIMMs, the paper's headline capability).
    pub fn expand(&mut self, nodes: &[NodeId]) {
        for &n in nodes {
            self.free
                .entry(n)
                .or_insert_with(|| FreeList::new(self.geometry.rows));
        }
    }

    /// Serialises the allocator for a checkpoint (see
    /// [`PoolAllocator::from_snap`]).
    pub fn snap_into(&self, w: &mut SnapWriter) {
        beacon_dram::snap::put_geometry(w, &self.geometry);
        w.usize(self.free.len());
        for (node, list) in &self.free {
            beacon_cxl::snap::put_node(w, *node);
            w.usize(list.ranges.len());
            for (start, len) in &list.ranges {
                w.u64(*start);
                w.u64(*len);
            }
        }
        w.usize(self.excluded.len());
        for node in &self.excluded {
            beacon_cxl::snap::put_node(w, *node);
        }
    }

    /// Rebuilds an allocator serialised by [`PoolAllocator::snap_into`].
    ///
    /// # Errors
    /// [`SnapError::Corrupt`] on unsorted free lists or exclusions; any
    /// decode error from the constituent fields.
    pub fn from_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let geometry = beacon_dram::snap::get_geometry(r)?;
        let n = r.seq_len()?;
        let mut free = BTreeMap::new();
        for _ in 0..n {
            let node = beacon_cxl::snap::get_node(r)?;
            let m = r.seq_len()?;
            let mut ranges = Vec::with_capacity(m);
            let mut prev_end = 0u64;
            for _ in 0..m {
                let start = r.u64()?;
                let len = r.u64()?;
                if !ranges.is_empty() && start < prev_end {
                    return Err(SnapError::Corrupt(format!(
                        "free list of {node:?} not sorted"
                    )));
                }
                prev_end = start + len;
                ranges.push((start, len));
            }
            free.insert(node, FreeList { ranges });
        }
        let n = r.seq_len()?;
        let mut excluded = Vec::with_capacity(n);
        for _ in 0..n {
            let node = beacon_cxl::snap::get_node(r)?;
            if excluded.last().is_some_and(|&last| node <= last) {
                return Err(SnapError::Corrupt("excluded nodes not sorted".into()));
            }
            excluded.push(node);
        }
        Ok(PoolAllocator {
            geometry,
            free,
            excluded,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(|i| NodeId::dimm(0, i)).collect()
    }

    fn pool(n: u32) -> PoolAllocator {
        PoolAllocator::new(DimmGeometry::sim_scaled(), &nodes(n))
    }

    #[test]
    fn allocations_get_disjoint_rows() {
        let mut p = pool(2);
        let homes = nodes(2);
        let a = p.allocate(&homes, 1 << 20, 1).unwrap();
        let b = p.allocate(&homes, 1 << 20, 1).unwrap();
        assert_ne!(a.base_row, b.base_row);
        assert!(b.base_row >= a.base_row + a.rows || a.base_row >= b.base_row + b.rows);
    }

    #[test]
    fn deallocate_makes_rows_reusable() {
        let mut p = pool(1);
        let homes = nodes(1);
        let total = p.free_rows(homes[0]).unwrap();
        let a = p.allocate(&homes, 1 << 24, 4).unwrap();
        assert_eq!(p.free_rows(homes[0]).unwrap(), total - a.rows);
        p.deallocate(&a).unwrap();
        assert_eq!(p.free_rows(homes[0]).unwrap(), total);
        // The exact range is handed out again (first fit from the start).
        let b = p.allocate(&homes, 1 << 24, 4).unwrap();
        assert_eq!(b.base_row, a.base_row);
    }

    #[test]
    fn freeing_coalesces_neighbours() {
        let mut p = pool(1);
        let homes = nodes(1);
        let a = p.allocate(&homes, 1 << 22, 1).unwrap();
        let b = p.allocate(&homes, 1 << 22, 1).unwrap();
        let c = p.allocate(&homes, 1 << 22, 1).unwrap();
        p.deallocate(&a).unwrap();
        p.deallocate(&c).unwrap();
        p.deallocate(&b).unwrap();
        // Everything merged back: one allocation the size of all three
        // fits at the original base.
        let big = p
            .allocate(&homes, 3 * (1 << 22), 1)
            .expect("coalesced range fits");
        assert_eq!(big.base_row, a.base_row);
    }

    #[test]
    fn exhaustion_is_an_error_not_a_panic() {
        let mut p = pool(1);
        let homes = nodes(1);
        let sweep = p.row_sweep_bytes();
        // Grab everything.
        let total_rows = p.free_rows(homes[0]).unwrap();
        let _grant = p.allocate(&homes, total_rows * sweep, 1).unwrap();
        let e = p.allocate(&homes, sweep, 1).unwrap_err();
        assert!(matches!(e, AllocError::OutOfRows { .. }));
    }

    #[test]
    fn unknown_node_is_rejected() {
        let mut p = pool(1);
        let foreign = [NodeId::dimm(9, 9)];
        let e = p.allocate(&foreign, 1024, 1).unwrap_err();
        assert_eq!(e, AllocError::UnknownNode(NodeId::dimm(9, 9)));
    }

    #[test]
    fn expansion_adds_capacity() {
        let mut p = pool(1);
        assert!(p.free_rows(NodeId::dimm(0, 1)).is_none());
        p.expand(&[NodeId::dimm(0, 1)]);
        let rows = p.free_rows(NodeId::dimm(0, 1)).unwrap();
        assert_eq!(rows, DimmGeometry::sim_scaled().rows);
        // And allocations spanning old + new homes work.
        let homes = vec![NodeId::dimm(0, 0), NodeId::dimm(0, 1)];
        assert!(p.allocate(&homes, 1 << 20, 1).is_ok());
    }

    #[test]
    fn common_base_respects_per_node_fragmentation() {
        // Fragment node 0 so the first free range of node 1 is taken on
        // node 0; the allocator must find a range free on BOTH.
        let mut p = pool(2);
        let n0 = vec![NodeId::dimm(0, 0)];
        let both = nodes(2);
        let hole = p.allocate(&n0, 1 << 24, 2).unwrap();
        let joint = p.allocate(&both, 1 << 24, 2).unwrap();
        assert!(joint.base_row >= hole.base_row + hole.rows);
        assert!(p.free_rows(both[1]).unwrap() > p.free_rows(both[0]).unwrap());
    }

    #[test]
    fn excluded_nodes_reject_allocations() {
        let mut p = pool(2);
        let homes = nodes(2);
        let (free, used) = p.exclude(homes[1]).expect("known node");
        assert!(used == 0 && free > 0, "nothing allocated yet");
        assert!(p.is_excluded(homes[1]));
        let e = p.allocate(&homes, 1 << 20, 1).unwrap_err();
        assert_eq!(e, AllocError::NodeExcluded(homes[1]));
        // The surviving node still serves allocations.
        assert!(p.allocate(&homes[..1], 1 << 20, 1).is_ok());
        // Double exclusion is idempotent.
        assert!(p.exclude(homes[1]).is_none());
    }

    #[test]
    fn exclude_reports_used_bytes_for_rehoming() {
        let mut p = pool(1);
        let homes = nodes(1);
        let grant = p.allocate(&homes, 1 << 24, 1).unwrap();
        let (_, used) = p.exclude(homes[0]).unwrap();
        assert_eq!(used, grant.rows * p.row_sweep_bytes());
    }

    #[test]
    fn rows_needed_scales_with_window() {
        let p = pool(1);
        let one = p.rows_needed(1, 1);
        assert_eq!(one, 1);
        assert_eq!(p.rows_needed(1, 64), 64);
        let sweep = p.row_sweep_bytes();
        assert_eq!(p.rows_needed(sweep + 1, 1), 2);
    }
}
