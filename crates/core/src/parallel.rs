//! Deterministic parallel execution of a [`BeaconSystem`].
//!
//! The pool is sharded per switch: one [`PoolShard`] owns a
//! `SwitchNode` (fabric + in-switch logic + the DIMMs behind it) and
//! advances it independently on a worker thread. Everything a shard
//! exchanges with the rest of the pool crosses the host root complex,
//! whose forwarding latency (`cfg.host_latency`) is therefore the
//! model's *lookahead*: traffic leaving a shard during the epoch
//! `[t0, t0 + E)` cannot influence any shard before `t0 + E` as long as
//! `E <= host_latency`. The epoch engine uses exactly `E =
//! host_latency`, so every barrier fully drains the hub.
//!
//! At each barrier the [`HostHub`] collects the shards' uplink egress
//! and merges it with [`canonical_merge`] into the order the sequential
//! `pump_host` would have observed — by arrival cycle, then source
//! switch index, then per-source FIFO sequence — making the run
//! **bit-identical** to [`BeaconSystem::run`] for any thread count and
//! any OS schedule. The conformance suite in `tests/differential.rs`
//! holds that contract down to the digest of every counter and the
//! canonicalised trace stream.

use std::cell::Cell;
use std::collections::VecDeque;

use beacon_sim::journey::{self, Phase};

use beacon_accel::result::RunResult;
use beacon_accel::translate::RegionMap;
use beacon_cxl::bundle::Bundle;
use beacon_sim::cycle::{Cycle, Duration};
use beacon_sim::engine::Progress;
use beacon_sim::metrics::MetricsSample;
use beacon_sim::parallel::{EpochHub, EpochShard, ParallelEngine, ParallelHooks};

use crate::config::BeaconConfig;
use crate::obs;
use crate::system::{BeaconSystem, GaugeAcc, SwitchNode, SysCtx};

thread_local! {
    /// Ambient worker-thread count consulted by [`BeaconSystem::run`].
    static THREADS: Cell<usize> = const { Cell::new(1) };
}

/// Sets the ambient worker-thread count for subsequent
/// [`BeaconSystem::run`] calls on this thread. `1` (the default)
/// selects the sequential reference engine.
///
/// # Panics
/// Panics when `n` is zero.
pub fn set_threads(n: usize) {
    assert!(n > 0, "need at least one thread");
    THREADS.with(|t| t.set(n));
}

/// The ambient worker-thread count installed by [`set_threads`].
pub fn threads() -> usize {
    THREADS.with(|t| t.get())
}

/// One host-bound bundle drained from a shard's uplink: `(arrival cycle
/// at the uplink endpoint, source switch index, per-source drain
/// sequence, payload)`.
pub type HubEntry = (Cycle, u32, u64, Bundle);

/// Sorts hub entries into the canonical host-forwarding order:
/// arrival cycle, then source switch index, then per-source FIFO
/// sequence. This is a total order (source + sequence are unique), and
/// it equals the order the sequential `pump_host` stages traffic in —
/// per cycle it drains switch 0's uplink to exhaustion, then switch
/// 1's, and each uplink pops in FIFO order. Exposed so the conformance
/// suite can shuffle entries and assert the merge is permutation
/// independent.
pub fn canonical_merge(entries: &mut [HubEntry]) {
    entries.sort_unstable_by_key(|e| (e.0, e.1, e.2));
}

/// One switch subtree plus its epoch-exchange buffers.
pub(crate) struct PoolShard<'a> {
    cfg: &'a BeaconConfig,
    maps: &'a [RegionMap],
    remap: Option<&'a crate::mmf::RemapPlan>,
    rmw_alu_cycles: u64,
    pub(crate) node: SwitchNode,
    /// Next cycle this shard will simulate.
    pos: Cycle,
    /// Host-forwarded deliveries scheduled into this shard, ready-ordered:
    /// `(ready cycle, bundle)`.
    pub(crate) inbox: VecDeque<(Cycle, Bundle)>,
    /// Uplink egress drained this epoch, awaiting hub collection.
    outbox: Vec<HubEntry>,
    /// Monotone per-shard drain counter (the FIFO tiebreaker).
    seq: u64,
    index: u32,
    /// Event-horizon fast-forwarding, captured from the spawning
    /// thread's ambient [`beacon_sim::engine::skip_enabled`] (worker
    /// threads have their own thread-locals).
    skip: bool,
    /// Backs horizon probes off in dense phases (see
    /// [`beacon_sim::engine::ProbeThrottle`]); deferred probes only tick
    /// provably-dead cycles, so shard state stays bit-identical.
    throttle: beacon_sim::engine::ProbeThrottle,
    /// Cycles actually ticked (diverges from `pos` under skipping).
    ticked: u64,
}

impl<'a> PoolShard<'a> {
    /// The context is built from the shard's own borrows (`'a`, not
    /// `'_`), so callers can keep mutating `node` while holding it.
    fn ctx(&self) -> SysCtx<'a> {
        SysCtx {
            cfg: self.cfg,
            maps: self.maps,
            rmw_alu_cycles: self.rmw_alu_cycles,
            remap: self.remap,
        }
    }
}

impl EpochShard for PoolShard<'_> {
    fn advance(&mut self, to: Cycle) {
        while self.pos < to {
            if self.inbox.is_empty() && self.node.subtree_idle() {
                return; // pause — resumable if the hub delivers more
            }
            let now = self.pos;
            // 1. Drain our own uplink egress, exactly what the
            //    sequential pump_host would pop at `now` (the egress is
            //    drained every cycle, so arrivals surface the cycle
            //    they complete).
            while let Some((arrival, bundle)) = self.node.uplink_recv_before(now.next()) {
                self.outbox.push((arrival, self.index, self.seq, bundle));
                self.seq += 1;
            }
            // 2. Inject host deliveries due by `now`. On ingress
            //    back-pressure the head blocks the rest of the queue —
            //    the sequential scan behaves identically, because a
            //    full uplink ingress stays full for the remainder of
            //    that cycle's host_stage sweep.
            while let Some(&(ready, _)) = self.inbox.front() {
                if ready > now {
                    break;
                }
                let (ready, bundle) = self.inbox.pop_front().expect("checked front");
                match self.node.uplink_send(bundle, now) {
                    Ok(()) => {}
                    Err(e) => {
                        self.inbox.push_front((ready, e.into_bundle()));
                        break;
                    }
                }
            }
            // 3. The per-switch slice of the sequential tick.
            self.node.tick_cycle(self.ctx(), now);
            self.ticked += 1;
            // 4. Fast-forward over dead cycles. The subtree horizon
            //    already covers uplink-egress arrivals (they are fabric
            //    link events), and the inbox clamp keeps host
            //    injections on their exact cycle — a bundle offered to
            //    the uplink ingress at a different cycle would
            //    serialise differently. A back-pressured inbox head
            //    (ready <= now) degenerates to a per-cycle retry.
            let stepped = now.next();
            // Never jump a shard that just went quiescent: its pause
            // position is part of the finished-cycle computation and
            // must stay exactly one past its last busy tick.
            self.pos = if self.skip
                && !(self.inbox.is_empty() && self.node.subtree_idle())
                && self.throttle.probe()
            {
                let mut h = self.node.subtree_next_event();
                if let Some(&(ready, _)) = self.inbox.front() {
                    h = h.min(ready);
                }
                let next = h.max(stepped).min(to);
                self.throttle.observe(next > stepped);
                next
            } else {
                stepped
            };
        }
    }

    fn finish_to(&mut self, to: Cycle) {
        // Only reached when quiescent: no egress to drain, no inbox to
        // inject. Background state (DRAM refresh) still advances
        // exactly as the sequential engine's idle-subtree ticks do —
        // under skipping the shard jumps refresh-to-refresh.
        while self.pos < to {
            self.node.tick_cycle(self.ctx(), self.pos);
            self.ticked += 1;
            let stepped = self.pos.next();
            self.pos = if self.skip {
                self.node.subtree_next_event().max(stepped).min(to)
            } else {
                stepped
            };
        }
    }

    fn position(&self) -> Cycle {
        self.pos
    }

    fn ticked(&self) -> u64 {
        self.ticked
    }

    fn quiescent(&self) -> bool {
        // The outbox needs no check: the hub empties every outbox
        // before the engine's drained test runs.
        self.inbox.is_empty() && self.node.subtree_idle()
    }

    fn progress(&self) -> u64 {
        self.node.progress_counter()
    }

    fn snapshot(&self) -> String {
        let mut s = String::new();
        self.node.snapshot_into(&mut s);
        s
    }
}

/// The host root complex as an epoch hub: collects uplink egress at
/// every barrier, merges it canonically and schedules each bundle into
/// its destination shard `host_latency` cycles after arrival.
pub(crate) struct HostHub {
    latency: Duration,
    /// Undelivered forwarded traffic in canonical order:
    /// `(ready cycle, destination switch, bundle)`. Non-empty after an
    /// exchange only when the horizon was clamped by the cycle limit.
    pending: VecDeque<(Cycle, u32, Bundle)>,
}

impl HostHub {
    pub(crate) fn new(host_latency: u64) -> Self {
        HostHub {
            latency: Duration::new(host_latency),
            pending: VecDeque::new(),
        }
    }
}

impl<'a> EpochHub<PoolShard<'a>> for HostHub {
    fn exchange(&mut self, shards: &mut [PoolShard<'a>], horizon: Cycle) -> bool {
        let mut collected: Vec<HubEntry> = Vec::new();
        for shard in shards.iter_mut() {
            collected.append(&mut shard.outbox);
        }
        canonical_merge(&mut collected);
        // Append keeps `pending` canonically ordered: retained entries
        // arrived in an earlier epoch, so their ready cycles precede
        // every new one.
        for (arrival, _src, _seq, mut bundle) in collected {
            if journey::active() {
                // Same transition the sequential `pump_host` records on
                // uplink receive, at the same canonical arrival cycle —
                // phase aggregates stay thread-count-independent.
                for m in &mut bundle.messages {
                    if let Some(stamp) = &mut m.jny {
                        journey::hop(stamp, arrival, Phase::HostForward);
                    }
                }
            }
            for m in &mut bundle.messages {
                *m = m.cleared_via_host();
            }
            let dst = bundle.messages[0]
                .dst
                .switch()
                .expect("pool destinations only");
            self.pending
                .push_back((arrival + self.latency, dst, bundle));
        }
        while let Some(&(ready, _, _)) = self.pending.front() {
            if ready >= horizon {
                break;
            }
            let (ready, dst, bundle) = self.pending.pop_front().expect("checked front");
            shards[dst as usize].inbox.push_back((ready, bundle));
        }
        !self.pending.is_empty()
    }
}

impl BeaconSystem {
    /// Runs until the workload drains on `threads` worker threads and
    /// returns measurements **bit-identical** to [`BeaconSystem::run`]:
    /// same `RunResult` digest, same per-component stats, same
    /// canonicalised trace stream, for any thread count.
    ///
    /// Metrics sampling and progress reporting fire at epoch barriers
    /// (every `host_latency` cycles) rather than exact cycles, and the
    /// `host.staged` gauge counts hub deliveries staged at the shards —
    /// equivalent in spirit but not sample-for-sample identical to the
    /// sequential observer output.
    ///
    /// # Panics
    /// Panics when `threads` is zero, when `host_latency` is zero (the
    /// epoch scheme's lookahead would vanish) or when the model
    /// deadlocks (cycle limit / stall).
    pub fn run_parallel(&mut self, threads: usize) -> RunResult {
        assert!(threads > 0, "need at least one thread");
        assert!(
            self.cfg.host_latency >= 1,
            "parallel runs need host_latency >= 1 for a non-zero lookahead"
        );
        self.refresh_journey_gates();
        let cfg = self.cfg;
        let start = self.clock;
        let maps = std::mem::take(&mut self.maps);
        let remap = self.remap.take();
        let rmw_alu_cycles = self.rmw_alu_cycles;
        // A restored checkpoint resumes with host-staged traffic in
        // flight: seed the hub with it, applying exactly the transform
        // `pump_host` would at delivery (clear the host-bias detour
        // flag, route by destination switch). The stage is ready-cycle
        // sorted, so the hub's canonical order is preserved, and the
        // first exchange runs before any shard advances — a bundle due
        // at the capture cycle is delivered on it.
        let mut hub = HostHub::new(cfg.host_latency);
        for (ready, mut bundle) in self.host_stage.drain(..) {
            for m in &mut bundle.messages {
                *m = m.cleared_via_host();
            }
            let dst = bundle.messages[0]
                .dst
                .switch()
                .expect("pool destinations only");
            hub.pending.push_back((ready, dst, bundle));
        }
        let mut shards: Vec<PoolShard<'_>> = std::mem::take(&mut self.switches)
            .into_iter()
            .enumerate()
            .map(|(i, node)| PoolShard {
                cfg: &cfg,
                maps: &maps,
                remap: remap.as_deref(),
                rmw_alu_cycles,
                node,
                pos: start,
                inbox: VecDeque::new(),
                outbox: Vec::new(),
                seq: 0,
                index: i as u32,
                skip: beacon_sim::engine::skip_enabled(),
                throttle: beacon_sim::engine::ProbeThrottle::new(),
                ticked: 0,
            })
            .collect();
        let engine = ParallelEngine::new(cfg.host_latency, threads).starting_at(start);

        // Mirror obs::drive at barrier granularity.
        let installed = obs::snapshot();
        let mut samples: Vec<MetricsSample> = Vec::new();
        let mut hooks: ParallelHooks<'_, PoolShard<'_>> = ParallelHooks {
            on_stall: Some(Box::new(obs::report_stall)),
            ..ParallelHooks::default()
        };
        match installed {
            None => hooks.stall_window = obs::DEFAULT_STALL_WINDOW,
            Some((ocfg, run)) => {
                hooks.stall_window = ocfg.stall_window;
                if ocfg.metrics_every > 0 {
                    hooks.sample_every = ocfg.metrics_every;
                    let samples = &mut samples;
                    hooks.on_sample =
                        Some(Box::new(move |now: Cycle, shards: &[PoolShard<'_>]| {
                            let mut acc = GaugeAcc::default();
                            let mut staged = 0usize;
                            for sh in shards {
                                sh.node.accumulate_gauges(&mut acc);
                                staged += sh.inbox.len();
                            }
                            let mut values = Vec::new();
                            acc.push_into(staged, &mut values);
                            let events: u64 =
                                shards.iter().map(|sh| sh.node.progress_counter()).sum();
                            values.push(("events".to_owned(), events as f64));
                            samples.push(MetricsSample {
                                run,
                                cycle: now.as_u64(),
                                values,
                            });
                        }));
                }
                if ocfg.progress_every > 0 {
                    hooks.progress_every = ocfg.progress_every;
                    hooks.on_progress = Some(Box::new(move |p: &Progress| {
                        eprintln!(
                            "[beacon run {run}] cycle {} | {} events | {:.1} Mcyc/s effective ({:.1} ticked)",
                            p.now.as_u64(),
                            p.events,
                            p.cycles_per_sec / 1e6,
                            p.ticked_per_sec / 1e6,
                        );
                    }));
                }
            }
        }

        let outcome = engine.run_instrumented(&mut shards, &mut hub, &mut hooks);
        drop(hooks);

        self.switches = shards.into_iter().map(|s| s.node).collect();
        self.maps = maps;
        self.remap = remap;
        if installed.is_some() {
            obs::commit(samples);
        }
        self.finished_at = outcome.finished_at();
        self.clock = self.finished_at;
        self.collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BeaconVariant, Optimizations};
    use crate::mmf::{build_layout, LayoutSpec};
    use beacon_genomics::genome::{Genome, GenomeId};
    use beacon_genomics::prelude::FmIndex;
    use beacon_genomics::reads::ReadSampler;
    use beacon_genomics::trace::{AppKind, Region, TaskTrace};

    fn fm_workload(n: usize) -> (Vec<TaskTrace>, u64) {
        let g = Genome::synthetic(GenomeId::Pt, 3000, 5);
        let idx = FmIndex::build(g.sequence());
        let mut sampler = ReadSampler::new(&g, 24, 0.0, 9);
        let traces = (0..n)
            .map(|_| idx.trace_search(sampler.next_read().bases()))
            .collect();
        (traces, idx.index_bytes())
    }

    fn build(variant: BeaconVariant, traces: &[TaskTrace], bytes: u64) -> BeaconSystem {
        let app = AppKind::FmSeeding;
        let mut cfg =
            BeaconConfig::paper(variant, app).with_opts(Optimizations::full(variant, app));
        cfg.pes_per_module = 8;
        let layout = build_layout(&cfg, &[LayoutSpec::shared_random(Region::FmIndex, bytes)]);
        let mut sys = BeaconSystem::new(cfg, layout);
        sys.submit_round_robin(traces.iter().cloned());
        sys
    }

    #[test]
    fn parallel_matches_sequential_bit_for_bit() {
        let (traces, bytes) = fm_workload(16);
        let reference = build(BeaconVariant::D, &traces, bytes).run();
        for threads in [1, 2, 4] {
            let got = build(BeaconVariant::D, &traces, bytes).run_parallel(threads);
            assert_eq!(
                got.digest(),
                reference.digest(),
                "diverged at {threads} threads:\n{}",
                got.diff(&reference).unwrap_or_default()
            );
        }
    }

    #[test]
    fn parallel_matches_on_switch_logic_variant() {
        let (traces, bytes) = fm_workload(12);
        let reference = build(BeaconVariant::S, &traces, bytes).run();
        let got = build(BeaconVariant::S, &traces, bytes).run_parallel(4);
        assert_eq!(
            got.digest(),
            reference.digest(),
            "{}",
            got.diff(&reference).unwrap_or_default()
        );
    }

    #[test]
    fn ambient_threads_route_run() {
        let (traces, bytes) = fm_workload(8);
        let reference = build(BeaconVariant::D, &traces, bytes).run();
        set_threads(2);
        let got = build(BeaconVariant::D, &traces, bytes).run();
        set_threads(1);
        assert_eq!(got.digest(), reference.digest());
    }

    #[test]
    fn canonical_merge_is_permutation_independent() {
        use beacon_cxl::message::{Message, NodeId};
        let mk = |tag: u64| {
            Bundle::single(Message::read_req(
                NodeId::dimm(0, 0),
                NodeId::dimm(1, 0),
                64,
                tag,
            ))
        };
        let mut a: Vec<HubEntry> = vec![
            (Cycle::new(5), 1, 0, mk(0)),
            (Cycle::new(3), 0, 0, mk(1)),
            (Cycle::new(3), 0, 1, mk(2)),
            (Cycle::new(3), 1, 0, mk(3)),
            (Cycle::new(9), 0, 2, mk(4)),
        ];
        let mut b: Vec<HubEntry> = a.iter().rev().cloned().collect();
        canonical_merge(&mut a);
        canonical_merge(&mut b);
        assert_eq!(a, b);
        let keys: Vec<(u64, u32, u64)> = a.iter().map(|e| (e.0.as_u64(), e.1, e.2)).collect();
        assert_eq!(
            keys,
            vec![(3, 0, 0), (3, 0, 1), (3, 1, 0), (5, 1, 0), (9, 0, 2)]
        );
    }
}
