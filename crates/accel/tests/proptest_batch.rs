//! Property tests for the batched-completion tick (DESIGN.md §15.5).
//!
//! Two equivalences, each over random task mixes driven through a
//! deterministic memory model (fixed per-token latency):
//!
//! * **Event-driven vs every-cycle ticking.** An engine ticked only at
//!   its own `next_event` horizon (plus submission and data-return
//!   cycles — exactly the schedule the owning system produces under
//!   dead-cycle skipping) must issue the same accesses at the same
//!   cycles, retire the same tasks, report the same counters and
//!   accumulate the same busy-PE integral as one ticked on every cycle.
//!   A bucket drained out of order, a dropped completion or a stale
//!   `next_event` all diverge here.
//!
//! * **Coarse-tick conservation.** An engine ticked only every `stride`
//!   cycles drains several completion buckets in a single `tick_into` —
//!   the multi-bucket batch path. Issue *cycles* legitimately shift
//!   (work is processed late), but nothing may be lost or duplicated:
//!   the multiset of issued access tokens, the retirement count and the
//!   flushed `engine.accesses_issued` counter must match the every-cycle
//!   reference.
//!
//! The in-crate `CompletionQueue` proptest (crates/accel/src/task.rs)
//! pins the drain order itself against a retained
//! `BinaryHeap<Reverse<(Cycle, TaskId)>>` oracle.

use beacon_accel::task::{AccessToken, TaskEngine};
use beacon_genomics::trace::{Access, AccessKind, AppKind, Region, Step, TaskTrace};
use beacon_sim::cycle::Cycle;
use proptest::prelude::*;

/// Deterministic memory latency for a returned datum, keyed only by the
/// access token so every driver sees the same value: 1..=16 cycles.
fn mem_latency(token: AccessToken) -> u64 {
    1 + (token.encode().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 60)
}

/// Builds one task trace from a raw sample: 1–3 steps, each blocking or
/// posted with 0–2 accesses, plus an app kind so per-app PE latencies
/// mix on one engine (multiple live completion buckets).
fn trace_from(r: u64) -> (TaskTrace, bool) {
    let steps = (1 + r % 3) as usize;
    let mk = |s: u64| Access {
        region: Region::FmIndex,
        offset: (s % 512) * 32,
        bytes: 32,
        kind: AccessKind::Read,
    };
    let steps = (0..steps)
        .map(|i| {
            let s = r.rotate_left(7 * (i as u32 + 1));
            let accesses = (0..s % 3).map(|j| mk(s >> (8 + j))).collect();
            if s.is_multiple_of(2) {
                Step::blocking(accesses)
            } else {
                Step::posted(accesses)
            }
        })
        .collect();
    let app = match r % 3 {
        0 => AppKind::FmSeeding,
        1 => AppKind::KmerCounting,
        _ => AppKind::PreAlignment,
    };
    (TaskTrace::new(app, steps), r.is_multiple_of(5))
}

/// The submission schedule: `(cycle, trace, via_app)` triples with
/// non-decreasing cycles.
fn schedule(ops: &[u64]) -> Vec<(u64, TaskTrace, bool)> {
    let mut at = 0u64;
    ops.iter()
        .map(|&r| {
            at += r % 4;
            let (trace, via_app) = trace_from(r);
            (at, trace, via_app)
        })
        .collect()
}

/// Everything observable about one run.
#[derive(Debug, PartialEq, Eq)]
struct Observed {
    issued: Vec<(u64, u64)>,
    completed: usize,
    busy_pe_cycles: u64,
    counters: Vec<(String, u64)>,
}

/// Drives `engine` over `subs`, ticking according to `pick_next`:
/// given `(floor, engine, earliest_submission, earliest_delivery)` it
/// returns the next tick cycle, or `None` for "tick every cycle".
/// Data returns are delivered at the first tick at-or-after their due
/// cycle, ordered by `(due, token)`.
fn run(
    mut engine: TaskEngine,
    subs: &[(u64, TaskTrace, bool)],
    next_tick: impl Fn(u64, &TaskEngine, Option<u64>, Option<u64>) -> u64,
) -> Observed {
    let mut issued: Vec<(u64, u64)> = Vec::new();
    let mut pending: Vec<(u64, AccessToken)> = Vec::new();
    let mut sub_i = 0;
    let mut out = Vec::new();
    let mut floor = 0u64;
    for _guard in 0..200_000 {
        let next_sub = subs.get(sub_i).map(|&(c, ..)| c);
        let next_ret = pending.iter().map(|&(d, _)| d).min();
        if next_sub.is_none() && next_ret.is_none() && engine.next_event() == Cycle::NEVER {
            break;
        }
        let at = next_tick(floor, &engine, next_sub, next_ret);
        assert!(at >= floor, "tick cycles must not regress");
        let now = Cycle::new(at);
        while subs.get(sub_i).is_some_and(|&(c, ..)| c <= at) {
            let (_, ref trace, via_app) = subs[sub_i];
            if via_app {
                engine.submit_for_app(trace.clone());
            } else {
                engine.submit(trace.clone());
            }
            sub_i += 1;
        }
        let mut due: Vec<(u64, AccessToken)> = Vec::new();
        pending.retain(|&(d, t)| {
            if d <= at {
                due.push((d, t));
                false
            } else {
                true
            }
        });
        due.sort_unstable_by_key(|&(d, t)| (d, t.encode()));
        for (_, token) in due {
            engine.on_data(token, now);
        }
        out.clear();
        engine.tick_into(now, &mut out);
        for a in &out {
            issued.push((at, a.token.encode()));
            pending.push((at + mem_latency(a.token), a.token));
        }
        floor = at + 1;
    }
    assert!(
        engine.all_done(),
        "engine failed to drain under this tick schedule"
    );
    Observed {
        issued,
        completed: engine.completed(),
        busy_pe_cycles: engine.busy_pe_cycles(),
        counters: engine
            .stats()
            .iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    }
}

/// Tick on every cycle (the exhaustive reference).
fn eager(floor: u64, _e: &TaskEngine, _s: Option<u64>, _r: Option<u64>) -> u64 {
    floor
}

/// Tick only at event horizons: the engine's own `next_event`, the next
/// submission, the next data return — whichever is earliest.
fn lazy(floor: u64, e: &TaskEngine, s: Option<u64>, r: Option<u64>) -> u64 {
    let mut at = u64::MAX;
    if let Some(c) = s {
        at = at.min(c.max(floor));
    }
    if let Some(c) = r {
        at = at.min(c.max(floor));
    }
    match e.next_event() {
        c if c == Cycle::NEVER => {}
        c => at = at.min(c.as_u64().max(floor)),
    }
    at
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Event-driven ticking is bit-identical to every-cycle ticking.
    #[test]
    fn event_driven_tick_matches_every_cycle(
        ops in prop::collection::vec(0u64..u64::MAX, 1..60),
        n_pes in 1usize..9,
    ) {
        let subs = schedule(&ops);
        let fine = run(TaskEngine::new(n_pes, 16), &subs, eager);
        let skip = run(TaskEngine::new(n_pes, 16), &subs, lazy);
        prop_assert_eq!(&fine.issued, &skip.issued, "issue streams diverged");
        prop_assert_eq!(fine.completed, skip.completed);
        prop_assert_eq!(fine.busy_pe_cycles, skip.busy_pe_cycles);
        prop_assert_eq!(&fine.counters, &skip.counters, "stat counters diverged");
    }

    /// Coarse ticks drain several buckets per call; work is conserved.
    #[test]
    fn coarse_tick_conserves_work(
        ops in prop::collection::vec(0u64..u64::MAX, 1..60),
        stride in 2u64..40,
    ) {
        let subs = schedule(&ops);
        let fine = run(TaskEngine::new(4, 16), &subs, eager);
        let coarse = run(
            TaskEngine::new(4, 16),
            &subs,
            move |floor, _e, _s, _r| floor.next_multiple_of(stride),
        );
        let key = |v: &[(u64, u64)]| {
            let mut toks: Vec<u64> = v.iter().map(|&(_, t)| t).collect();
            toks.sort_unstable();
            toks
        };
        prop_assert_eq!(key(&fine.issued), key(&coarse.issued), "issued token multisets diverged");
        prop_assert_eq!(fine.completed, coarse.completed);
        prop_assert_eq!(
            fine.counters.iter().find(|(k, _)| k == "engine.accesses_issued"),
            coarse.counters.iter().find(|(k, _)| k == "engine.accesses_issued"),
            "flushed access counter diverged"
        );
    }
}
