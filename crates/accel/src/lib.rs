//! # beacon-accel — near-data-processing building blocks and baselines
//!
//! The pieces every NDP accelerator in this repository is assembled from:
//!
//! * [`task`] — the NDP module's task machinery: multi-context PEs, the
//!   Task Scheduler with its incoming/out-going queues (paper Fig. 5 b ④)
//!   and access tokens for matching returned data to blocked tasks,
//! * [`translate`] — the Address Translator abstraction (paper Fig. 5 b
//!   ③): mapping a kernel's logical `(region, offset)` accesses onto
//!   physical `(node, DIMM coordinate)` locations,
//! * [`cpu_model`] — the analytical 48-thread CPU baseline the paper
//!   normalises against, and
//! * [`medal`] / [`nest`] — the prior DDR-DIMM accelerators (MEDAL for
//!   DNA seeding, NEST for k-mer counting) used as hardware baselines,
//!   complete with their shared-memory-channel communication bottleneck.
//!
//! The BEACON systems themselves (BEACON-D / BEACON-S) live in
//! `beacon-core` and are wired from the same parts.

#![warn(missing_docs)]

pub mod cpu_model;
pub mod medal;
pub mod nest;
pub mod pending;
pub mod result;
pub mod server;
pub mod task;
pub mod translate;

/// Commonly used items.
pub mod prelude {
    pub use crate::cpu_model::{CpuModel, CpuRun, WorkloadSummary};
    pub use crate::medal::{Medal, MedalConfig, RegionSpec};
    pub use crate::nest::{Nest, NestConfig};
    pub use crate::pending::PendingTable;
    pub use crate::result::{DegradedRun, RunResult};
    pub use crate::server::{DimmServer, ServiceOp};
    pub use crate::task::{AccessToken, IssuedAccess, TaskEngine, TaskId};
    pub use crate::translate::{PhysSegment, Placement, RegionMap};
}
