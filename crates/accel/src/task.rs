//! The NDP module's task machinery: PEs and the Task Scheduler.
//!
//! A *task* is one [`TaskTrace`] (one read / one candidate pair). PEs
//! execute a task's steps: compute for the application's PE latency, then
//! issue the step's memory accesses. A task that must wait for data
//! (`wait_for_data`) leaves its PE and parks in the scheduler's incoming
//! queue — the PE immediately picks another ready task, which is how the
//! paper's design hides memory latency behind task-level parallelism.
//! When the last outstanding access of a parked task returns, the task
//! moves to the out-going queue and is assigned to the next free PE.

use std::collections::VecDeque;

use beacon_sim::cycle::{Cycle, Duration};
use beacon_sim::snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};
use beacon_sim::stats::Stats;
use beacon_sim::trace::{self, TraceCategory, TraceEvent, TraceLevel};
use serde::{Deserialize, Serialize};

use beacon_genomics::trace::{Access, TaskTrace};

/// Identifier of a task within one [`TaskEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub u32);

/// Matches a returned datum to the access that requested it.
///
/// Encodes `(task, step, index-within-step)` into a `u64` so it can ride
/// in message tags across the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AccessToken {
    /// The requesting task.
    pub task: TaskId,
    /// Step index within the task.
    pub step: u32,
    /// Access index within the step.
    pub idx: u32,
}

impl AccessToken {
    /// Packs the token into a `u64` tag.
    pub fn encode(&self) -> u64 {
        ((self.task.0 as u64) << 32)
            | ((self.step as u64 & 0xFFFF) << 16)
            | (self.idx as u64 & 0xFFFF)
    }

    /// Unpacks a token from a `u64` tag.
    pub fn decode(tag: u64) -> Self {
        AccessToken {
            task: TaskId((tag >> 32) as u32),
            step: ((tag >> 16) & 0xFFFF) as u32,
            idx: (tag & 0xFFFF) as u32,
        }
    }
}

/// An access a PE has just issued; the owning system must translate and
/// deliver it, then call [`TaskEngine::on_data`] with the token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssuedAccess {
    /// Token to return via [`TaskEngine::on_data`].
    pub token: AccessToken,
    /// The logical access.
    pub access: Access,
    /// Whether the issuing task blocks on this access.
    pub blocking: bool,
}

/// Deterministic per-tick work counters (`tick-audit` feature): the
/// batched-drain analogue of the DRAM crate's `TickAudit`. Pure
/// observation — never snapshotted, never digested, identical across
/// runs with the same tick pattern.
#[cfg(feature = "tick-audit")]
#[derive(Debug, Clone, Default)]
pub struct EngineAudit {
    /// `tick_into` calls observed.
    ticks: u64,
    /// Completion buckets drained (one sort + one sweep each).
    batches: u64,
    /// PE step completions processed out of drained buckets.
    completions: u64,
}

/// A point-in-time copy of the [`EngineAudit`] counters.
#[cfg(feature = "tick-audit")]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineAuditCounters {
    /// `tick_into` calls observed.
    pub ticks: u64,
    /// Completion buckets drained (one sort + one sweep each).
    pub batches: u64,
    /// PE step completions processed out of drained buckets.
    pub completions: u64,
}

/// Cycle-keyed completion buckets (DESIGN.md §15.5): every PE finishing
/// on the same cycle sits in one bucket, so a tick drains whole batches
/// instead of popping a heap once per completion. Buckets stay sorted
/// ascending by finish cycle; a drained bucket is sorted by `TaskId`
/// before processing, which reproduces the old
/// `BinaryHeap<Reverse<(Cycle, TaskId)>>` pop order exactly. Drained
/// bucket `Vec`s are recycled through a spare pool so the steady state
/// allocates nothing.
#[derive(Debug, Clone, Default)]
struct CompletionQueue {
    /// `(finish_cycle, tasks)` buckets, ascending by cycle, each
    /// non-empty and unsorted until drained.
    buckets: VecDeque<(Cycle, Vec<TaskId>)>,
    /// Total computing PEs (sum of bucket lengths).
    busy: usize,
    /// Emptied bucket storage kept for reuse.
    spare: Vec<Vec<TaskId>>,
}

/// Bucket `Vec`s retained for reuse; beyond this the engine is cycling
/// through more distinct finish cycles than any real workload mix.
const SPARE_BUCKETS: usize = 8;

impl CompletionQueue {
    /// Number of computing PEs.
    fn len(&self) -> usize {
        self.busy
    }

    /// Earliest finish cycle, if any PE is computing.
    fn next_cycle(&self) -> Option<Cycle> {
        self.buckets.front().map(|&(c, _)| c)
    }

    fn fresh_bucket(&mut self, task: TaskId) -> Vec<TaskId> {
        let mut ids = self.spare.pop().unwrap_or_default();
        ids.push(task);
        ids
    }

    /// Records that `task`'s PE finishes at `until`.
    fn push(&mut self, until: Cycle, task: TaskId) {
        self.busy += 1;
        // Fast paths: uniform-latency engines land every assignment of a
        // tick on the tail bucket (same finish cycle) or just past it.
        match self.buckets.back_mut() {
            Some((c, ids)) if *c == until => {
                ids.push(task);
                return;
            }
            Some((c, _)) if *c < until => {
                let ids = self.fresh_bucket(task);
                self.buckets.push_back((until, ids));
                return;
            }
            None => {
                let ids = self.fresh_bucket(task);
                self.buckets.push_back((until, ids));
                return;
            }
            _ => {}
        }
        // Mixed per-app latencies: find or create the bucket in place.
        match self.buckets.binary_search_by(|(c, _)| c.cmp(&until)) {
            Ok(i) => self.buckets[i].1.push(task),
            Err(i) => {
                let ids = self.fresh_bucket(task);
                self.buckets.insert(i, (until, ids));
            }
        }
    }

    /// Takes the earliest bucket when it is due at `now`, sorted by
    /// `TaskId` (heap pop order). The caller must hand the `Vec` back
    /// via [`CompletionQueue::recycle`].
    fn take_due(&mut self, now: Cycle) -> Option<Vec<TaskId>> {
        match self.buckets.front() {
            Some(&(c, _)) if c <= now => {
                let (_, mut ids) = self.buckets.pop_front().expect("front checked");
                ids.sort_unstable();
                self.busy -= ids.len();
                Some(ids)
            }
            _ => None,
        }
    }

    /// Returns a drained bucket's storage to the spare pool.
    fn recycle(&mut self, mut ids: Vec<TaskId>) {
        if self.spare.len() < SPARE_BUCKETS {
            ids.clear();
            self.spare.push(ids);
        }
    }
}

#[derive(Debug, Clone)]
struct TaskState {
    trace: TaskTrace,
    /// Per-step compute latency (from the task's application engine —
    /// the PEs are multi-purpose, paper Fig. 5 d).
    latency: Duration,
    /// Next step to execute.
    cursor: usize,
    /// Outstanding blocking accesses of the current step.
    outstanding: u32,
    /// Outstanding posted (fire-and-forget) accesses across all steps.
    outstanding_posted: u32,
    /// All steps executed (may still have posted accesses in flight).
    steps_done: bool,
    retired: bool,
}

/// PEs + Task Scheduler of one NDP module.
///
/// The tick path is event-driven and batched: computing PEs sit in
/// cycle-keyed buckets ([`CompletionQueue`]), so a tick drains every
/// completion due at `now` in one pass rather than one heap pop per PE —
/// essential with the paper's 512-PE configurations, where dense
/// kernels finish tens of steps per cycle.
#[derive(Debug, Clone)]
pub struct TaskEngine {
    n_pes: usize,
    /// Finish-cycle buckets of every computing PE.
    computing: CompletionQueue,
    /// Default per-step compute latency for tasks whose application is
    /// not consulted (see [`TaskEngine::submit`]).
    pe_latency: Duration,
    /// Out-going queue: tasks ready for a PE.
    ready: VecDeque<TaskId>,
    tasks: Vec<TaskState>,
    completed: usize,
    stats: Stats,
    /// Integral of busy-PE count over time (utilisation / PE energy).
    busy_pe_cycles: u64,
    last_busy_update: Cycle,
    /// Tick-local accumulator for `engine.accesses_issued`: folded into
    /// `stats` once per `tick_into` so the sorted-array lookup runs
    /// O(1) per tick instead of once per issued step. Always zero
    /// outside `tick_into` — never snapshotted.
    acc_accesses_issued: u64,
    /// Trace-track label; `None` falls back to `"engine"`.
    trace_id: Option<Box<str>>,
    #[cfg(feature = "tick-audit")]
    audit: EngineAudit,
}

impl TaskEngine {
    /// Creates an engine with `n_pes` processing elements whose per-step
    /// compute latency is `pe_latency_cycles`.
    ///
    /// # Panics
    /// Panics when `n_pes` is zero.
    pub fn new(n_pes: usize, pe_latency_cycles: u32) -> Self {
        assert!(n_pes > 0, "need at least one PE");
        TaskEngine {
            n_pes,
            computing: CompletionQueue::default(),
            pe_latency: Duration::new(pe_latency_cycles as u64),
            ready: VecDeque::new(),
            tasks: Vec::new(),
            completed: 0,
            stats: Stats::new(),
            busy_pe_cycles: 0,
            last_busy_update: Cycle::ZERO,
            acc_accesses_issued: 0,
            trace_id: None,
            #[cfg(feature = "tick-audit")]
            audit: EngineAudit::default(),
        }
    }

    /// Snapshot of the deterministic work counters (`tick-audit` only).
    #[cfg(feature = "tick-audit")]
    pub fn audit_counters(&self) -> EngineAuditCounters {
        EngineAuditCounters {
            ticks: self.audit.ticks,
            batches: self.audit.batches,
            completions: self.audit.completions,
        }
    }

    /// Zeroes the deterministic work counters (`tick-audit` only).
    #[cfg(feature = "tick-audit")]
    pub fn audit_reset(&mut self) {
        self.audit = EngineAudit::default();
    }

    /// Sets the track label this engine's trace events are emitted under.
    pub fn set_trace_id(&mut self, id: impl Into<String>) {
        self.trace_id = Some(id.into().into_boxed_str());
    }

    fn trace_task(&self, now: Cycle, level: TraceLevel, name: &'static str, arg: u64) {
        if trace::enabled(level) {
            trace::emit(
                self.trace_id.as_deref().unwrap_or("engine"),
                TraceEvent::instant(now.as_u64(), level, TraceCategory::Accel, name, arg),
            );
        }
    }

    /// Number of PEs.
    pub fn pe_count(&self) -> usize {
        self.n_pes
    }

    /// Submits a task with the engine's default per-step latency; it
    /// joins the ready queue.
    pub fn submit(&mut self, trace: TaskTrace) -> TaskId {
        let latency = self.pe_latency;
        self.submit_with_latency(trace, latency)
    }

    /// Submits a task that runs on the PE engine matching its
    /// application (the multi-purpose PE picks the right functional
    /// unit; paper Fig. 5 d lists FM, hash, KMC and pre-alignment
    /// engines with distinct latencies). Lets one module co-run
    /// different genome-analysis applications.
    pub fn submit_for_app(&mut self, trace: TaskTrace) -> TaskId {
        let latency = Duration::new(trace.app.pe_latency_cycles() as u64);
        self.submit_with_latency(trace, latency)
    }

    fn submit_with_latency(&mut self, trace: TaskTrace, latency: Duration) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        let empty = trace.steps.is_empty();
        self.tasks.push(TaskState {
            trace,
            latency,
            cursor: 0,
            outstanding: 0,
            outstanding_posted: 0,
            steps_done: empty,
            retired: false,
        });
        if empty {
            self.tasks[id.0 as usize].retired = true;
            self.completed += 1;
        } else {
            self.ready.push_back(id);
        }
        self.stats.incr("engine.tasks_submitted");
        self.trace_task(
            self.last_busy_update,
            TraceLevel::Task,
            "task.submit",
            id.0 as u64,
        );
        id
    }

    /// Tasks retired so far.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Total tasks submitted.
    pub fn submitted(&self) -> usize {
        self.tasks.len()
    }

    /// True when every submitted task has retired.
    pub fn all_done(&self) -> bool {
        self.completed == self.tasks.len()
    }

    /// Engine statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// PE-busy cycle count (for utilisation and PE energy).
    pub fn busy_pe_cycles(&self) -> u64 {
        self.busy_pe_cycles
    }

    /// Number of PEs currently computing a step.
    pub fn busy_pes(&self) -> usize {
        self.computing.len()
    }

    /// Tasks in the out-going (ready-for-a-PE) queue.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Advances the PEs to cycle `now`, appending the accesses issued to
    /// `out` so the owning system can reuse one scratch buffer across
    /// ticks instead of allocating a `Vec` per call.
    ///
    /// Completions due at `now` drain in whole cycle buckets (sorted by
    /// `TaskId`, matching the retired min-heap's pop order bit for bit)
    /// so the per-completion bookkeeping amortises across the batch.
    pub fn tick_into(&mut self, now: Cycle, out: &mut Vec<IssuedAccess>) {
        #[cfg(feature = "tick-audit")]
        {
            self.audit.ticks += 1;
        }
        // Accumulate the busy-PE integral over the elapsed interval.
        let elapsed = now.since(self.last_busy_update).as_u64();
        self.busy_pe_cycles += elapsed * self.computing.len() as u64;
        self.last_busy_update = now;

        loop {
            // Finish every compute that is due, one bucket at a time.
            while let Some(batch) = self.computing.take_due(now) {
                #[cfg(feature = "tick-audit")]
                {
                    self.audit.batches += 1;
                    self.audit.completions += batch.len() as u64;
                }
                for &task in &batch {
                    self.finish_step(task, now, out);
                }
                self.computing.recycle(batch);
            }
            // Assign ready tasks to free PEs.
            let mut assigned = false;
            while self.computing.len() < self.n_pes {
                let Some(task) = self.ready.pop_front() else {
                    break;
                };
                let until = now + self.tasks[task.0 as usize].latency;
                self.computing.push(until, task);
                assigned = true;
            }
            // Zero-latency engines (or immediate finishes) may cascade:
            // keep going until nothing new happened this cycle.
            if !assigned || self.computing.next_cycle().map(|u| u > now).unwrap_or(true) {
                break;
            }
        }
        // Flush the tick-local counter; `Stats::add` ignores zero.
        let issued = std::mem::take(&mut self.acc_accesses_issued);
        self.stats.add("engine.accesses_issued", issued);
    }

    /// The cycle at which the engine next has internal work due
    /// ([`Cycle::NEVER`] when only waiting on memory). Lets owning
    /// systems skip dead cycles.
    pub fn next_event(&self) -> Cycle {
        if !self.ready.is_empty() {
            return Cycle::ZERO; // work available immediately
        }
        self.computing.next_cycle().unwrap_or(Cycle::NEVER)
    }

    /// Executes the step the PE just finished computing for `task`:
    /// emits its accesses and either parks the task (blocking step),
    /// requeues it (posted step with more work) or retires it.
    fn finish_step(&mut self, task: TaskId, now: Cycle, issued: &mut Vec<IssuedAccess>) {
        let t = &mut self.tasks[task.0 as usize];
        debug_assert!(!t.steps_done && !t.retired);
        let step_idx = t.cursor;
        let step = &t.trace.steps[step_idx];
        let blocking = step.wait_for_data && !step.accesses.is_empty();

        for (i, access) in step.accesses.iter().enumerate() {
            issued.push(IssuedAccess {
                token: AccessToken {
                    task,
                    step: step_idx as u32,
                    idx: i as u32,
                },
                access: *access,
                blocking,
            });
        }
        self.acc_accesses_issued += step.accesses.len() as u64;
        if trace::enabled(TraceLevel::Flit) {
            trace::emit(
                self.trace_id.as_deref().unwrap_or("engine"),
                TraceEvent::instant(
                    now.as_u64(),
                    TraceLevel::Flit,
                    TraceCategory::Accel,
                    "task.step",
                    step.accesses.len() as u64,
                ),
            );
        }

        if blocking {
            t.outstanding = step.accesses.len() as u32;
            // Parked: in the incoming queue awaiting operands. It returns
            // via on_data.
        } else {
            t.outstanding_posted += step.accesses.len() as u32;
            t.cursor += 1;
            if t.cursor >= t.trace.steps.len() {
                t.steps_done = true;
                self.try_retire(task, now);
            } else {
                // Continue on some PE: back into the ready queue (the same
                // PE will usually grab it this very cycle if free).
                self.ready.push_back(task);
            }
        }
    }

    /// Delivers returned data for `token`. Posted accesses are
    /// acknowledged through the same path.
    ///
    /// # Panics
    /// Panics when the token does not correspond to an in-flight access —
    /// that is a wiring bug in the owning system.
    pub fn on_data(&mut self, token: AccessToken, now: Cycle) {
        let t = &mut self.tasks[token.task.0 as usize];
        assert!(!t.retired, "data for retired task {:?}", token.task);

        let step = &t.trace.steps[token.step as usize];
        if step.wait_for_data {
            debug_assert_eq!(token.step as usize, t.cursor, "stale blocking token");
            debug_assert!(t.outstanding > 0);
            t.outstanding -= 1;
            if t.outstanding == 0 {
                t.cursor += 1;
                if t.cursor >= t.trace.steps.len() {
                    t.steps_done = true;
                    self.try_retire(token.task, now);
                } else {
                    self.ready.push_back(token.task);
                }
            }
        } else {
            debug_assert!(t.outstanding_posted > 0);
            t.outstanding_posted -= 1;
            if t.steps_done {
                self.try_retire(token.task, now);
            }
        }
    }

    fn try_retire(&mut self, task: TaskId, now: Cycle) {
        let t = &mut self.tasks[task.0 as usize];
        if t.steps_done && t.outstanding == 0 && t.outstanding_posted == 0 && !t.retired {
            t.retired = true;
            self.completed += 1;
            self.stats.incr("engine.tasks_completed");
            self.trace_task(now, TraceLevel::Task, "task.retire", task.0 as u64);
        }
    }
}

impl Snapshot for TaskEngine {
    const TAG: &'static str = "accel.engine";
    const VERSION: u16 = 1;
    fn snap(&self, w: &mut SnapWriter) {
        // `n_pes`, `pe_latency` and `trace_id` are construction-time.
        // Per-task latency IS dynamic (submit_for_app varies it), so it
        // travels with each task. The buckets serialise as ascending
        // `(cycle, task)` pairs — byte-identical to the retired heap's
        // `into_sorted_vec` wire form, so the payload version is
        // unchanged. The accumulator is flushed at every tick boundary
        // and snapshots only happen between cycles, so it never needs a
        // wire slot.
        debug_assert_eq!(self.acc_accesses_issued, 0, "unflushed accumulator");
        w.usize(self.computing.len());
        for (until, ids) in &self.computing.buckets {
            let mut sorted: Vec<u32> = ids.iter().map(|t| t.0).collect();
            sorted.sort_unstable();
            for id in sorted {
                w.cycle(*until);
                w.u32(id);
            }
        }
        w.usize(self.ready.len());
        for task in &self.ready {
            w.u32(task.0);
        }
        w.usize(self.tasks.len());
        for t in &self.tasks {
            beacon_genomics::snap::put_trace(w, &t.trace);
            w.duration(t.latency);
            w.usize(t.cursor);
            w.u32(t.outstanding);
            w.u32(t.outstanding_posted);
            w.bool(t.steps_done);
            w.bool(t.retired);
        }
        w.usize(self.completed);
        w.component(&self.stats);
        w.u64(self.busy_pe_cycles);
        w.cycle(self.last_busy_update);
    }
}

impl Restore for TaskEngine {
    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.seq_len()?;
        let mut computing = CompletionQueue::default();
        for _ in 0..n {
            let until = r.cycle()?;
            // Pairs arrive ascending, so every push lands on the tail
            // bucket fast path.
            computing.push(until, TaskId(r.u32()?));
        }
        self.computing = computing;
        self.acc_accesses_issued = 0;
        let n = r.seq_len()?;
        let mut ready = VecDeque::with_capacity(n);
        for _ in 0..n {
            ready.push_back(TaskId(r.u32()?));
        }
        self.ready = ready;
        let n = r.seq_len()?;
        let mut tasks = Vec::with_capacity(n);
        for _ in 0..n {
            tasks.push(TaskState {
                trace: beacon_genomics::snap::get_trace(r)?,
                latency: r.duration()?,
                cursor: r.usize()?,
                outstanding: r.u32()?,
                outstanding_posted: r.u32()?,
                steps_done: r.bool()?,
                retired: r.bool()?,
            });
        }
        self.tasks = tasks;
        self.completed = r.usize()?;
        r.component(&mut self.stats)?;
        self.busy_pe_cycles = r.u64()?;
        self.last_busy_update = r.cycle()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beacon_genomics::trace::{AccessKind, AppKind, Region, Step};

    fn read_access(off: u64) -> Access {
        Access {
            region: Region::FmIndex,
            offset: off,
            bytes: 32,
            kind: AccessKind::Read,
        }
    }

    fn chain_trace(steps: usize) -> TaskTrace {
        TaskTrace::new(
            AppKind::FmSeeding,
            (0..steps)
                .map(|i| Step::blocking(vec![read_access(i as u64 * 32)]))
                .collect(),
        )
    }

    fn posted_trace(steps: usize) -> TaskTrace {
        TaskTrace::new(
            AppKind::KmerCounting,
            (0..steps)
                .map(|i| Step::posted(vec![read_access(i as u64)]))
                .collect(),
        )
    }

    /// Collecting shim for the removed allocating `tick` wrapper: the
    /// engine API is `tick_into`; tests trade the scratch reuse for
    /// brevity.
    fn tick(e: &mut TaskEngine, now: Cycle) -> Vec<IssuedAccess> {
        let mut out = Vec::new();
        e.tick_into(now, &mut out);
        out
    }

    /// Runs the engine with an ideal zero-latency memory.
    fn run_ideal(engine: &mut TaskEngine, max_cycles: u64) -> u64 {
        for c in 0..max_cycles {
            let now = Cycle::new(c);
            let issued = tick(engine, now);
            for a in issued {
                engine.on_data(a.token, now);
            }
            if engine.all_done() {
                return c;
            }
        }
        panic!("engine did not drain");
    }

    #[test]
    fn token_encode_decode_round_trip() {
        let t = AccessToken {
            task: TaskId(123456),
            step: 789,
            idx: 42,
        };
        assert_eq!(AccessToken::decode(t.encode()), t);
    }

    #[test]
    fn single_task_completes_after_all_steps() {
        let mut e = TaskEngine::new(1, 16);
        e.submit(chain_trace(4));
        let finished = run_ideal(&mut e, 10_000);
        // 4 steps × 16 cycles compute, plus scheduling overhead cycles.
        assert!(finished >= 4 * 16);
        assert_eq!(e.completed(), 1);
    }

    #[test]
    fn posted_steps_do_not_block() {
        let mut e = TaskEngine::new(1, 10);
        e.submit(posted_trace(5));
        run_ideal(&mut e, 10_000);
        assert_eq!(e.completed(), 1);
        assert_eq!(e.stats().get("engine.accesses_issued"), 5);
    }

    #[test]
    fn empty_trace_retires_immediately() {
        let mut e = TaskEngine::new(2, 16);
        e.submit(TaskTrace::new(AppKind::FmSeeding, vec![]));
        assert!(e.all_done());
        assert_eq!(e.completed(), 1);
    }

    #[test]
    fn parallel_pes_overlap_tasks() {
        let mut one = TaskEngine::new(1, 16);
        let mut many = TaskEngine::new(8, 16);
        for _ in 0..16 {
            one.submit(chain_trace(4));
            many.submit(chain_trace(4));
        }
        let t_one = run_ideal(&mut one, 100_000);
        let t_many = run_ideal(&mut many, 100_000);
        assert!(
            t_many * 4 < t_one,
            "8 PEs ({t_many}) not ≥4x faster than 1 PE ({t_one})"
        );
    }

    #[test]
    fn blocked_task_frees_its_pe() {
        // One PE, two tasks: while task A waits for memory, task B must
        // make progress (latency hiding).
        let mut e = TaskEngine::new(1, 10);
        let a = e.submit(chain_trace(1));
        let b = e.submit(chain_trace(1));

        // Tick until both tasks have issued their (single) access without
        // returning any data: possible only if the PE switched tasks.
        let mut issued_tasks = std::collections::HashSet::new();
        for c in 0..200 {
            for acc in tick(&mut e, Cycle::new(c)) {
                issued_tasks.insert(acc.token.task);
            }
            if issued_tasks.len() == 2 {
                break;
            }
        }
        assert!(issued_tasks.contains(&a) && issued_tasks.contains(&b));
        assert_eq!(e.completed(), 0);
    }

    #[test]
    fn multi_access_step_waits_for_all() {
        let trace = TaskTrace::new(
            AppKind::FmSeeding,
            vec![Step::blocking(vec![read_access(0), read_access(64)])],
        );
        let mut e = TaskEngine::new(1, 4);
        e.submit(trace);
        let mut tokens = Vec::new();
        for c in 0..100 {
            tokens.extend(tick(&mut e, Cycle::new(c)).into_iter().map(|a| a.token));
            if !tokens.is_empty() {
                break;
            }
        }
        assert_eq!(tokens.len(), 2);
        e.on_data(tokens[0], Cycle::new(50));
        assert_eq!(e.completed(), 0);
        e.on_data(tokens[1], Cycle::new(51));
        assert_eq!(e.completed(), 1);
    }

    #[test]
    fn utilisation_counter_grows() {
        let mut e = TaskEngine::new(2, 16);
        e.submit(chain_trace(2));
        run_ideal(&mut e, 10_000);
        assert!(e.busy_pe_cycles() >= 32);
    }

    #[test]
    fn per_app_latencies_coexist_on_one_engine() {
        // Multi-purpose PEs: an FM task (16 cycles/step) and a
        // pre-alignment task (82 cycles/step) run on the same module.
        let mut e = TaskEngine::new(2, 16);
        let fm = TaskTrace::new(AppKind::FmSeeding, vec![Step::blocking(vec![])]);
        let pa = TaskTrace::new(AppKind::PreAlignment, vec![Step::blocking(vec![])]);
        e.submit_for_app(fm);
        e.submit_for_app(pa);
        // Tick cycle by cycle: the FM task retires at 16, the
        // pre-alignment task at 82.
        let mut done_at = Vec::new();
        for c in 0..200 {
            let before = e.completed();
            tick(&mut e, Cycle::new(c));
            if e.completed() > before {
                done_at.push(c);
            }
            if e.all_done() {
                break;
            }
        }
        assert_eq!(done_at, vec![16, 82]);
    }

    mod completion_queue_oracle {
        use super::*;
        use proptest::prelude::*;
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// The bucket queue drains in exactly the retained
            /// `BinaryHeap<Reverse<(Cycle, TaskId)>>` pop order — the
            /// per-event oracle the batched tick replaced — and agrees
            /// with it on occupancy and horizon after every operation.
            #[test]
            fn bucket_drain_matches_heap_pop_order(
                ops in prop::collection::vec(0u64..u64::MAX, 1..300)
            ) {
                let mut q = CompletionQueue::default();
                let mut heap: BinaryHeap<Reverse<(Cycle, TaskId)>> = BinaryHeap::new();
                let mut now = 0u64;
                for &r in &ops {
                    if r % 3 == 0 {
                        // Advance the clock and drain everything due:
                        // whole buckets on one side, one pop at a time
                        // on the other.
                        now += r % 5;
                        let n = Cycle::new(now);
                        let mut batched = Vec::new();
                        while let Some(b) = q.take_due(n) {
                            batched.extend_from_slice(&b);
                            q.recycle(b);
                        }
                        let mut popped = Vec::new();
                        while heap.peek().is_some_and(|&Reverse((c, _))| c <= n) {
                            popped.push(heap.pop().expect("peeked").0 .1);
                        }
                        prop_assert_eq!(
                            &batched, &popped,
                            "drain order diverged at cycle {}", now
                        );
                    } else {
                        // Narrow ranges force bucket collisions and
                        // duplicate task ids within one bucket.
                        let until = Cycle::new(now + 1 + (r >> 8) % 24);
                        let task = TaskId((r % 7) as u32);
                        q.push(until, task);
                        heap.push(Reverse((until, task)));
                    }
                    prop_assert_eq!(q.len(), heap.len());
                    prop_assert_eq!(
                        q.next_cycle(),
                        heap.peek().map(|&Reverse((c, _))| c)
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "retired task")]
    fn data_for_retired_task_panics() {
        let mut e = TaskEngine::new(1, 4);
        e.submit(chain_trace(1));
        let mut token = None;
        for c in 0..100 {
            if let Some(a) = tick(&mut e, Cycle::new(c)).first() {
                token = Some(a.token);
                break;
            }
        }
        let token = token.unwrap();
        e.on_data(token, Cycle::new(60));
        assert!(e.all_done());
        e.on_data(token, Cycle::new(61)); // double delivery
    }
}
