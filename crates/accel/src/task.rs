//! The NDP module's task machinery: PEs and the Task Scheduler.
//!
//! A *task* is one [`TaskTrace`] (one read / one candidate pair). PEs
//! execute a task's steps: compute for the application's PE latency, then
//! issue the step's memory accesses. A task that must wait for data
//! (`wait_for_data`) leaves its PE and parks in the scheduler's incoming
//! queue — the PE immediately picks another ready task, which is how the
//! paper's design hides memory latency behind task-level parallelism.
//! When the last outstanding access of a parked task returns, the task
//! moves to the out-going queue and is assigned to the next free PE.

use std::collections::VecDeque;

use beacon_sim::cycle::{Cycle, Duration};
use beacon_sim::snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};
use beacon_sim::stats::Stats;
use beacon_sim::trace::{self, TraceCategory, TraceEvent, TraceLevel};
use serde::{Deserialize, Serialize};

use beacon_genomics::trace::{Access, TaskTrace};

/// Identifier of a task within one [`TaskEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub u32);

/// Matches a returned datum to the access that requested it.
///
/// Encodes `(task, step, index-within-step)` into a `u64` so it can ride
/// in message tags across the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AccessToken {
    /// The requesting task.
    pub task: TaskId,
    /// Step index within the task.
    pub step: u32,
    /// Access index within the step.
    pub idx: u32,
}

impl AccessToken {
    /// Packs the token into a `u64` tag.
    pub fn encode(&self) -> u64 {
        ((self.task.0 as u64) << 32)
            | ((self.step as u64 & 0xFFFF) << 16)
            | (self.idx as u64 & 0xFFFF)
    }

    /// Unpacks a token from a `u64` tag.
    pub fn decode(tag: u64) -> Self {
        AccessToken {
            task: TaskId((tag >> 32) as u32),
            step: ((tag >> 16) & 0xFFFF) as u32,
            idx: (tag & 0xFFFF) as u32,
        }
    }
}

/// An access a PE has just issued; the owning system must translate and
/// deliver it, then call [`TaskEngine::on_data`] with the token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssuedAccess {
    /// Token to return via [`TaskEngine::on_data`].
    pub token: AccessToken,
    /// The logical access.
    pub access: Access,
    /// Whether the issuing task blocks on this access.
    pub blocking: bool,
}

#[derive(Debug, Clone)]
struct TaskState {
    trace: TaskTrace,
    /// Per-step compute latency (from the task's application engine —
    /// the PEs are multi-purpose, paper Fig. 5 d).
    latency: Duration,
    /// Next step to execute.
    cursor: usize,
    /// Outstanding blocking accesses of the current step.
    outstanding: u32,
    /// Outstanding posted (fire-and-forget) accesses across all steps.
    outstanding_posted: u32,
    /// All steps executed (may still have posted accesses in flight).
    steps_done: bool,
    retired: bool,
}

/// PEs + Task Scheduler of one NDP module.
///
/// The tick path is event-driven: computing PEs sit in a min-heap keyed
/// by completion cycle, so a tick costs O(events) rather than O(PEs) —
/// essential with the paper's 512-PE configurations.
#[derive(Debug, Clone)]
pub struct TaskEngine {
    n_pes: usize,
    /// `(finish_cycle, task)` of every computing PE.
    computing: std::collections::BinaryHeap<std::cmp::Reverse<(Cycle, TaskId)>>,
    /// Default per-step compute latency for tasks whose application is
    /// not consulted (see [`TaskEngine::submit`]).
    pe_latency: Duration,
    /// Out-going queue: tasks ready for a PE.
    ready: VecDeque<TaskId>,
    tasks: Vec<TaskState>,
    completed: usize,
    stats: Stats,
    /// Integral of busy-PE count over time (utilisation / PE energy).
    busy_pe_cycles: u64,
    last_busy_update: Cycle,
    /// Trace-track label; `None` falls back to `"engine"`.
    trace_id: Option<Box<str>>,
}

impl TaskEngine {
    /// Creates an engine with `n_pes` processing elements whose per-step
    /// compute latency is `pe_latency_cycles`.
    ///
    /// # Panics
    /// Panics when `n_pes` is zero.
    pub fn new(n_pes: usize, pe_latency_cycles: u32) -> Self {
        assert!(n_pes > 0, "need at least one PE");
        TaskEngine {
            n_pes,
            computing: std::collections::BinaryHeap::new(),
            pe_latency: Duration::new(pe_latency_cycles as u64),
            ready: VecDeque::new(),
            tasks: Vec::new(),
            completed: 0,
            stats: Stats::new(),
            busy_pe_cycles: 0,
            last_busy_update: Cycle::ZERO,
            trace_id: None,
        }
    }

    /// Sets the track label this engine's trace events are emitted under.
    pub fn set_trace_id(&mut self, id: impl Into<String>) {
        self.trace_id = Some(id.into().into_boxed_str());
    }

    fn trace_task(&self, now: Cycle, level: TraceLevel, name: &'static str, arg: u64) {
        if trace::enabled(level) {
            trace::emit(
                self.trace_id.as_deref().unwrap_or("engine"),
                TraceEvent::instant(now.as_u64(), level, TraceCategory::Accel, name, arg),
            );
        }
    }

    /// Number of PEs.
    pub fn pe_count(&self) -> usize {
        self.n_pes
    }

    /// Submits a task with the engine's default per-step latency; it
    /// joins the ready queue.
    pub fn submit(&mut self, trace: TaskTrace) -> TaskId {
        let latency = self.pe_latency;
        self.submit_with_latency(trace, latency)
    }

    /// Submits a task that runs on the PE engine matching its
    /// application (the multi-purpose PE picks the right functional
    /// unit; paper Fig. 5 d lists FM, hash, KMC and pre-alignment
    /// engines with distinct latencies). Lets one module co-run
    /// different genome-analysis applications.
    pub fn submit_for_app(&mut self, trace: TaskTrace) -> TaskId {
        let latency = Duration::new(trace.app.pe_latency_cycles() as u64);
        self.submit_with_latency(trace, latency)
    }

    fn submit_with_latency(&mut self, trace: TaskTrace, latency: Duration) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        let empty = trace.steps.is_empty();
        self.tasks.push(TaskState {
            trace,
            latency,
            cursor: 0,
            outstanding: 0,
            outstanding_posted: 0,
            steps_done: empty,
            retired: false,
        });
        if empty {
            self.tasks[id.0 as usize].retired = true;
            self.completed += 1;
        } else {
            self.ready.push_back(id);
        }
        self.stats.incr("engine.tasks_submitted");
        self.trace_task(
            self.last_busy_update,
            TraceLevel::Task,
            "task.submit",
            id.0 as u64,
        );
        id
    }

    /// Tasks retired so far.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Total tasks submitted.
    pub fn submitted(&self) -> usize {
        self.tasks.len()
    }

    /// True when every submitted task has retired.
    pub fn all_done(&self) -> bool {
        self.completed == self.tasks.len()
    }

    /// Engine statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// PE-busy cycle count (for utilisation and PE energy).
    pub fn busy_pe_cycles(&self) -> u64 {
        self.busy_pe_cycles
    }

    /// Number of PEs currently computing a step.
    pub fn busy_pes(&self) -> usize {
        self.computing.len()
    }

    /// Tasks in the out-going (ready-for-a-PE) queue.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Advances the PEs to cycle `now`; returns the accesses issued.
    pub fn tick(&mut self, now: Cycle) -> Vec<IssuedAccess> {
        let mut issued = Vec::new();
        self.tick_into(now, &mut issued);
        issued
    }

    /// Allocation-free variant of [`TaskEngine::tick`]: appends issued
    /// accesses to `out` so the owning system can reuse one scratch
    /// buffer across ticks instead of allocating a `Vec` per call.
    pub fn tick_into(&mut self, now: Cycle, out: &mut Vec<IssuedAccess>) {
        // Accumulate the busy-PE integral over the elapsed interval.
        let elapsed = now.since(self.last_busy_update).as_u64();
        self.busy_pe_cycles += elapsed * self.computing.len() as u64;
        self.last_busy_update = now;

        loop {
            // Finish every compute that is due.
            while let Some(&std::cmp::Reverse((until, task))) = self.computing.peek() {
                if until > now {
                    break;
                }
                self.computing.pop();
                self.finish_step(task, now, out);
            }
            // Assign ready tasks to free PEs.
            let mut assigned = false;
            while self.computing.len() < self.n_pes {
                let Some(task) = self.ready.pop_front() else {
                    break;
                };
                let until = now + self.tasks[task.0 as usize].latency;
                self.computing.push(std::cmp::Reverse((until, task)));
                assigned = true;
            }
            // Zero-latency engines (or immediate finishes) may cascade:
            // keep going until nothing new happened this cycle.
            if !assigned
                || self
                    .computing
                    .peek()
                    .map(|&std::cmp::Reverse((u, _))| u > now)
                    .unwrap_or(true)
            {
                break;
            }
        }
    }

    /// The cycle at which the engine next has internal work due
    /// ([`Cycle::NEVER`] when only waiting on memory). Lets owning
    /// systems skip dead cycles.
    pub fn next_event(&self) -> Cycle {
        if !self.ready.is_empty() {
            return Cycle::ZERO; // work available immediately
        }
        self.computing
            .peek()
            .map(|&std::cmp::Reverse((u, _))| u)
            .unwrap_or(Cycle::NEVER)
    }

    /// Executes the step the PE just finished computing for `task`:
    /// emits its accesses and either parks the task (blocking step),
    /// requeues it (posted step with more work) or retires it.
    fn finish_step(&mut self, task: TaskId, now: Cycle, issued: &mut Vec<IssuedAccess>) {
        let t = &mut self.tasks[task.0 as usize];
        debug_assert!(!t.steps_done && !t.retired);
        let step_idx = t.cursor;
        let step = &t.trace.steps[step_idx];
        let blocking = step.wait_for_data && !step.accesses.is_empty();

        for (i, access) in step.accesses.iter().enumerate() {
            issued.push(IssuedAccess {
                token: AccessToken {
                    task,
                    step: step_idx as u32,
                    idx: i as u32,
                },
                access: *access,
                blocking,
            });
        }
        self.stats
            .add("engine.accesses_issued", step.accesses.len() as u64);
        if trace::enabled(TraceLevel::Flit) {
            trace::emit(
                self.trace_id.as_deref().unwrap_or("engine"),
                TraceEvent::instant(
                    now.as_u64(),
                    TraceLevel::Flit,
                    TraceCategory::Accel,
                    "task.step",
                    step.accesses.len() as u64,
                ),
            );
        }

        if blocking {
            t.outstanding = step.accesses.len() as u32;
            // Parked: in the incoming queue awaiting operands. It returns
            // via on_data.
        } else {
            t.outstanding_posted += step.accesses.len() as u32;
            t.cursor += 1;
            if t.cursor >= t.trace.steps.len() {
                t.steps_done = true;
                self.try_retire(task, now);
            } else {
                // Continue on some PE: back into the ready queue (the same
                // PE will usually grab it this very cycle if free).
                self.ready.push_back(task);
            }
        }
    }

    /// Delivers returned data for `token`. Posted accesses are
    /// acknowledged through the same path.
    ///
    /// # Panics
    /// Panics when the token does not correspond to an in-flight access —
    /// that is a wiring bug in the owning system.
    pub fn on_data(&mut self, token: AccessToken, now: Cycle) {
        let t = &mut self.tasks[token.task.0 as usize];
        assert!(!t.retired, "data for retired task {:?}", token.task);

        let step = &t.trace.steps[token.step as usize];
        if step.wait_for_data {
            debug_assert_eq!(token.step as usize, t.cursor, "stale blocking token");
            debug_assert!(t.outstanding > 0);
            t.outstanding -= 1;
            if t.outstanding == 0 {
                t.cursor += 1;
                if t.cursor >= t.trace.steps.len() {
                    t.steps_done = true;
                    self.try_retire(token.task, now);
                } else {
                    self.ready.push_back(token.task);
                }
            }
        } else {
            debug_assert!(t.outstanding_posted > 0);
            t.outstanding_posted -= 1;
            if t.steps_done {
                self.try_retire(token.task, now);
            }
        }
    }

    fn try_retire(&mut self, task: TaskId, now: Cycle) {
        let t = &mut self.tasks[task.0 as usize];
        if t.steps_done && t.outstanding == 0 && t.outstanding_posted == 0 && !t.retired {
            t.retired = true;
            self.completed += 1;
            self.stats.incr("engine.tasks_completed");
            self.trace_task(now, TraceLevel::Task, "task.retire", task.0 as u64);
        }
    }
}

impl Snapshot for TaskEngine {
    const TAG: &'static str = "accel.engine";
    const VERSION: u16 = 1;
    fn snap(&self, w: &mut SnapWriter) {
        // `n_pes`, `pe_latency` and `trace_id` are construction-time.
        // Per-task latency IS dynamic (submit_for_app varies it), so it
        // travels with each task. The heap serialises sorted so
        // identical logical state yields identical bytes.
        let computing = self.computing.clone().into_sorted_vec();
        w.usize(computing.len());
        for std::cmp::Reverse((until, task)) in &computing {
            w.cycle(*until);
            w.u32(task.0);
        }
        w.usize(self.ready.len());
        for task in &self.ready {
            w.u32(task.0);
        }
        w.usize(self.tasks.len());
        for t in &self.tasks {
            beacon_genomics::snap::put_trace(w, &t.trace);
            w.duration(t.latency);
            w.usize(t.cursor);
            w.u32(t.outstanding);
            w.u32(t.outstanding_posted);
            w.bool(t.steps_done);
            w.bool(t.retired);
        }
        w.usize(self.completed);
        w.component(&self.stats);
        w.u64(self.busy_pe_cycles);
        w.cycle(self.last_busy_update);
    }
}

impl Restore for TaskEngine {
    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.seq_len()?;
        let mut computing = std::collections::BinaryHeap::with_capacity(n);
        for _ in 0..n {
            let until = r.cycle()?;
            computing.push(std::cmp::Reverse((until, TaskId(r.u32()?))));
        }
        self.computing = computing;
        let n = r.seq_len()?;
        let mut ready = VecDeque::with_capacity(n);
        for _ in 0..n {
            ready.push_back(TaskId(r.u32()?));
        }
        self.ready = ready;
        let n = r.seq_len()?;
        let mut tasks = Vec::with_capacity(n);
        for _ in 0..n {
            tasks.push(TaskState {
                trace: beacon_genomics::snap::get_trace(r)?,
                latency: r.duration()?,
                cursor: r.usize()?,
                outstanding: r.u32()?,
                outstanding_posted: r.u32()?,
                steps_done: r.bool()?,
                retired: r.bool()?,
            });
        }
        self.tasks = tasks;
        self.completed = r.usize()?;
        r.component(&mut self.stats)?;
        self.busy_pe_cycles = r.u64()?;
        self.last_busy_update = r.cycle()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beacon_genomics::trace::{AccessKind, AppKind, Region, Step};

    fn read_access(off: u64) -> Access {
        Access {
            region: Region::FmIndex,
            offset: off,
            bytes: 32,
            kind: AccessKind::Read,
        }
    }

    fn chain_trace(steps: usize) -> TaskTrace {
        TaskTrace::new(
            AppKind::FmSeeding,
            (0..steps)
                .map(|i| Step::blocking(vec![read_access(i as u64 * 32)]))
                .collect(),
        )
    }

    fn posted_trace(steps: usize) -> TaskTrace {
        TaskTrace::new(
            AppKind::KmerCounting,
            (0..steps)
                .map(|i| Step::posted(vec![read_access(i as u64)]))
                .collect(),
        )
    }

    /// Runs the engine with an ideal zero-latency memory.
    fn run_ideal(engine: &mut TaskEngine, max_cycles: u64) -> u64 {
        for c in 0..max_cycles {
            let now = Cycle::new(c);
            let issued = engine.tick(now);
            for a in issued {
                engine.on_data(a.token, now);
            }
            if engine.all_done() {
                return c;
            }
        }
        panic!("engine did not drain");
    }

    #[test]
    fn token_encode_decode_round_trip() {
        let t = AccessToken {
            task: TaskId(123456),
            step: 789,
            idx: 42,
        };
        assert_eq!(AccessToken::decode(t.encode()), t);
    }

    #[test]
    fn single_task_completes_after_all_steps() {
        let mut e = TaskEngine::new(1, 16);
        e.submit(chain_trace(4));
        let finished = run_ideal(&mut e, 10_000);
        // 4 steps × 16 cycles compute, plus scheduling overhead cycles.
        assert!(finished >= 4 * 16);
        assert_eq!(e.completed(), 1);
    }

    #[test]
    fn posted_steps_do_not_block() {
        let mut e = TaskEngine::new(1, 10);
        e.submit(posted_trace(5));
        run_ideal(&mut e, 10_000);
        assert_eq!(e.completed(), 1);
        assert_eq!(e.stats().get("engine.accesses_issued"), 5);
    }

    #[test]
    fn empty_trace_retires_immediately() {
        let mut e = TaskEngine::new(2, 16);
        e.submit(TaskTrace::new(AppKind::FmSeeding, vec![]));
        assert!(e.all_done());
        assert_eq!(e.completed(), 1);
    }

    #[test]
    fn parallel_pes_overlap_tasks() {
        let mut one = TaskEngine::new(1, 16);
        let mut many = TaskEngine::new(8, 16);
        for _ in 0..16 {
            one.submit(chain_trace(4));
            many.submit(chain_trace(4));
        }
        let t_one = run_ideal(&mut one, 100_000);
        let t_many = run_ideal(&mut many, 100_000);
        assert!(
            t_many * 4 < t_one,
            "8 PEs ({t_many}) not ≥4x faster than 1 PE ({t_one})"
        );
    }

    #[test]
    fn blocked_task_frees_its_pe() {
        // One PE, two tasks: while task A waits for memory, task B must
        // make progress (latency hiding).
        let mut e = TaskEngine::new(1, 10);
        let a = e.submit(chain_trace(1));
        let b = e.submit(chain_trace(1));

        // Tick until both tasks have issued their (single) access without
        // returning any data: possible only if the PE switched tasks.
        let mut issued_tasks = std::collections::HashSet::new();
        for c in 0..200 {
            for acc in e.tick(Cycle::new(c)) {
                issued_tasks.insert(acc.token.task);
            }
            if issued_tasks.len() == 2 {
                break;
            }
        }
        assert!(issued_tasks.contains(&a) && issued_tasks.contains(&b));
        assert_eq!(e.completed(), 0);
    }

    #[test]
    fn multi_access_step_waits_for_all() {
        let trace = TaskTrace::new(
            AppKind::FmSeeding,
            vec![Step::blocking(vec![read_access(0), read_access(64)])],
        );
        let mut e = TaskEngine::new(1, 4);
        e.submit(trace);
        let mut tokens = Vec::new();
        for c in 0..100 {
            tokens.extend(e.tick(Cycle::new(c)).into_iter().map(|a| a.token));
            if !tokens.is_empty() {
                break;
            }
        }
        assert_eq!(tokens.len(), 2);
        e.on_data(tokens[0], Cycle::new(50));
        assert_eq!(e.completed(), 0);
        e.on_data(tokens[1], Cycle::new(51));
        assert_eq!(e.completed(), 1);
    }

    #[test]
    fn utilisation_counter_grows() {
        let mut e = TaskEngine::new(2, 16);
        e.submit(chain_trace(2));
        run_ideal(&mut e, 10_000);
        assert!(e.busy_pe_cycles() >= 32);
    }

    #[test]
    fn per_app_latencies_coexist_on_one_engine() {
        // Multi-purpose PEs: an FM task (16 cycles/step) and a
        // pre-alignment task (82 cycles/step) run on the same module.
        let mut e = TaskEngine::new(2, 16);
        let fm = TaskTrace::new(AppKind::FmSeeding, vec![Step::blocking(vec![])]);
        let pa = TaskTrace::new(AppKind::PreAlignment, vec![Step::blocking(vec![])]);
        e.submit_for_app(fm);
        e.submit_for_app(pa);
        // Tick cycle by cycle: the FM task retires at 16, the
        // pre-alignment task at 82.
        let mut done_at = Vec::new();
        for c in 0..200 {
            let before = e.completed();
            e.tick(Cycle::new(c));
            if e.completed() > before {
                done_at.push(c);
            }
            if e.all_done() {
                break;
            }
        }
        assert_eq!(done_at, vec![16, 82]);
    }

    #[test]
    #[should_panic(expected = "retired task")]
    fn data_for_retired_task_panics() {
        let mut e = TaskEngine::new(1, 4);
        e.submit(chain_trace(1));
        let mut token = None;
        for c in 0..100 {
            if let Some(a) = e.tick(Cycle::new(c)).first() {
                token = Some(a.token);
                break;
            }
        }
        let token = token.unwrap();
        e.on_data(token, Cycle::new(60));
        assert!(e.all_done());
        e.on_data(token, Cycle::new(61)); // double delivery
    }
}
