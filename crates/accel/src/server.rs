//! `DimmServer`: executes memory service operations against one DIMM.
//!
//! Systems (MEDAL, NEST, BEACON-D/S) hand the server *service
//! operations* — plain reads, writes and two-phase atomic RMWs — each
//! identified by a caller-chosen `u64` service id. The server owns the
//! [`Dimm`], queues operations when its controller is full, sequences the
//! read and write phases of atomics (the Atomic Engine's job, paper
//! Fig. 7) and reports completions.

use std::collections::VecDeque;

use beacon_sim::component::Tick;
use beacon_sim::cycle::Cycle;
use beacon_sim::engine::dense_fastpath_enabled;
use beacon_sim::journey::{self, JStamp, Phase};
use beacon_sim::snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};
use beacon_sim::stats::{Histogram, StatId, Stats};

use beacon_dram::address::DramCoord;
use beacon_dram::module::{CmdRing, Dimm, DimmConfig};
use beacon_dram::request::{CompletedAccess, ReqKind};

/// Kind of service operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceOp {
    /// Read `bytes`.
    Read,
    /// Write `bytes`.
    Write,
    /// Atomic read-modify-write: a read phase, the arithmetic in the
    /// atomic engine, then a write phase.
    Rmw,
}

#[derive(Debug, Clone, Copy)]
struct ServiceReq {
    id: u64,
    coord: DramCoord,
    bytes: u32,
    op: ServiceOp,
}

/// Tag discriminators on the DRAM request tags.
const PHASE_SINGLE: u64 = 0 << 62;
const PHASE_RMW_READ: u64 = 1 << 62;
const PHASE_RMW_WRITE: u64 = 2 << 62;
const PHASE_MASK: u64 = 0b11 << 62;

/// One DIMM with its service front-end.
#[derive(Debug, Clone)]
pub struct DimmServer {
    dimm: Dimm,
    backlog: VecDeque<ServiceReq>,
    /// Completions ready to hand back: `(service id, finish cycle)`.
    done: Vec<(u64, Cycle)>,
    /// Extra latency of the atomic engine's arithmetic between the RMW
    /// read and write phases, in cycles (small ALU op).
    rmw_alu_cycles: u64,
    /// RMW operations between phases: `(ready_cycle, write request)`.
    rmw_stage: VecDeque<(Cycle, ServiceReq)>,
    /// Reusable buffer for draining DIMM completions each tick.
    drain_scratch: Vec<CompletedAccess>,
    /// Staging ring to the DIMM: commands decode once at fill and the
    /// controller admits the batch in one sweep. Filled and fully
    /// drained inside [`Tick::tick`], so never live across a snapshot.
    ring: CmdRing,
    /// Service ids whose completion carried poisoned data (DIMM UE) —
    /// a subset of `done`; empty unless fault injection is armed.
    poisoned: Vec<u64>,
    /// Whole-DIMM failure happened; no further service is possible.
    failed: bool,
    /// Journey stamps of tracked in-flight service operations, keyed by
    /// service id. Holds only sampled requests (empty when attribution
    /// is off), so linear scans stay cheap.
    jny: Vec<(u64, JStamp)>,
    /// Return-phase stamps of completed tracked operations, for the
    /// owner to attach to response messages.
    jny_done: Vec<(u64, JStamp)>,
    stats: Stats,
    /// Pre-resolved handle for the per-tick atomic-op fold.
    atomic_ops_id: StatId,
}

impl DimmServer {
    /// Creates a server over a fresh DIMM.
    pub fn new(config: DimmConfig) -> Self {
        let ring = CmdRing::with_capacity(config.queue_depth);
        let mut stats = Stats::new();
        let atomic_ops_id = stats.id("server.atomic_ops");
        DimmServer {
            dimm: Dimm::new(config),
            backlog: VecDeque::new(),
            done: Vec::new(),
            rmw_alu_cycles: 4,
            rmw_stage: VecDeque::new(),
            drain_scratch: Vec::new(),
            ring,
            poisoned: Vec::new(),
            failed: false,
            jny: Vec::new(),
            jny_done: Vec::new(),
            stats,
            atomic_ops_id,
        }
    }

    /// Arms an uncorrectable-error stream on the underlying DIMM (see
    /// [`Dimm::set_ue_faults`]). Poisoned completions surface through
    /// [`DimmServer::drain_poisoned_into`].
    pub fn set_ue_faults(&mut self, ue: beacon_sim::faults::FaultStream) {
        self.dimm.set_ue_faults(ue);
    }

    /// True once [`DimmServer::fail_into`] has been called.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// RAS: the DIMM behind this server fails. Every outstanding
    /// service operation — backlogged, between RMW phases, inside the
    /// DRAM controller or completed-but-undrained — is aborted and its
    /// service id appended to `out` so the owner can nak the
    /// requesters. The server is permanently idle afterwards; the owner
    /// must stop submitting (`is_failed`).
    pub fn fail_into(&mut self, out: &mut Vec<u64>) {
        for r in self.backlog.drain(..) {
            out.push(r.id);
        }
        for (_, r) in self.rmw_stage.drain(..) {
            out.push(r.id);
        }
        for (id, _) in self.done.drain(..) {
            out.push(id);
        }
        let mut aborted = Vec::new();
        self.dimm.fail(&mut aborted);
        for tag in aborted {
            out.push(tag & !PHASE_MASK);
        }
        self.poisoned.clear();
        // Aborted operations drop their stamps: faults undercount in the
        // attribution report rather than fabricate phase durations.
        self.jny.clear();
        self.jny_done.clear();
        self.failed = true;
    }

    /// Submits a service operation.
    ///
    /// # Panics
    /// Panics when `id` uses the two reserved discriminator bits (ids
    /// must stay below 2^62).
    pub fn request(&mut self, id: u64, coord: DramCoord, bytes: u32, op: ServiceOp) {
        self.request_with(id, coord, bytes, op, None);
    }

    /// Submits a service operation carrying an optional journey stamp.
    /// The stamp's phase should already be [`Phase::BankQueue`] (the
    /// caller hops it on hand-over); the server splits queueing from
    /// bank service at completion and surfaces the return-phase stamp
    /// through [`DimmServer::drain_jny_done_into`].
    ///
    /// # Panics
    /// Panics when `id` uses the two reserved discriminator bits (ids
    /// must stay below 2^62).
    pub fn request_with(
        &mut self,
        id: u64,
        coord: DramCoord,
        bytes: u32,
        op: ServiceOp,
        jny: Option<JStamp>,
    ) {
        assert_eq!(id & PHASE_MASK, 0, "service id too large");
        if let Some(stamp) = jny {
            self.jny.push((id, stamp));
        }
        self.backlog.push_back(ServiceReq {
            id,
            coord,
            bytes,
            op,
        });
    }

    /// Backlogged operations not yet in the DRAM controller.
    #[inline]
    pub fn backlog_len(&self) -> usize {
        self.backlog.len()
    }

    /// Completed service ids (drains the internal list).
    pub fn drain_done(&mut self) -> Vec<(u64, Cycle)> {
        std::mem::take(&mut self.done)
    }

    /// Allocation-free variant of [`DimmServer::drain_done`]: appends the
    /// completions to `out`, letting the owner reuse one buffer across
    /// ticks.
    pub fn drain_done_into(&mut self, out: &mut Vec<(u64, Cycle)>) {
        out.append(&mut self.done);
    }

    /// Service ids among the drained completions whose data was
    /// poisoned by a DIMM uncorrectable error. Empty on fault-free runs;
    /// owners only need to consult it when it is non-empty.
    pub fn drain_poisoned_into(&mut self, out: &mut Vec<u64>) {
        out.append(&mut self.poisoned);
    }

    /// Return-phase journey stamps of completed tracked operations
    /// (`(service id, stamp)`; the stamp's `at` is the completion
    /// cycle). Empty unless attribution is sampling.
    pub fn drain_jny_done_into(&mut self, out: &mut Vec<(u64, JStamp)>) {
        out.append(&mut self.jny_done);
    }

    /// The underlying DIMM (stats, histograms).
    #[inline]
    pub fn dimm(&self) -> &Dimm {
        &self.dimm
    }

    /// Sets the track label the underlying DIMM's trace events are
    /// emitted under.
    pub fn set_trace_id(&mut self, id: impl Into<String>) {
        self.dimm.set_trace_id(id);
    }

    /// Server statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Per-chip access histogram of the DIMM.
    pub fn chip_histogram(&self) -> &Histogram {
        self.dimm.chip_histogram()
    }

    /// Stages every admissible command into the ring — RMW write phases
    /// first (the atomic engine's write-phase priority), then the
    /// backlog — decoding each exactly once. Bounded by the DIMM's free
    /// queue slots, so [`Dimm::consume_ring`] cannot overfill. The
    /// batch admission order equals the retired per-message
    /// `Dimm::enqueue` order bit for bit.
    fn fill_ring(&mut self, now: Cycle) {
        let mut free = self.dimm.queue_free();
        while free > 0 {
            let Some(&(ready, req)) = self.rmw_stage.front() else {
                break;
            };
            if ready > now {
                break;
            }
            let cmd = self.dimm.decode(
                ReqKind::Write,
                req.coord,
                req.bytes,
                PHASE_RMW_WRITE | req.id,
            );
            self.ring.push(cmd);
            self.rmw_stage.pop_front();
            free -= 1;
        }
        while free > 0 {
            let Some(req) = self.backlog.front().copied() else {
                break;
            };
            let (kind, tag) = match req.op {
                ServiceOp::Read => (ReqKind::Read, PHASE_SINGLE | req.id),
                ServiceOp::Write => (ReqKind::Write, PHASE_SINGLE | req.id),
                ServiceOp::Rmw => (ReqKind::Read, PHASE_RMW_READ | req.id),
            };
            let cmd = self.dimm.decode(kind, req.coord, req.bytes, tag);
            self.ring.push(cmd);
            self.backlog.pop_front();
            free -= 1;
        }
    }

    /// The server's event horizon as an absolute cycle: the earliest
    /// moment ticking could move a service operation forward. A cycle at
    /// or before "now" means immediately; [`Cycle::NEVER`] means nothing
    /// is scheduled and only a new [`DimmServer::request`] can wake it.
    pub fn next_event(&self) -> Cycle {
        if !self.done.is_empty() {
            // The owner still has completions to collect.
            return Cycle::ZERO;
        }
        if !self.backlog.is_empty() && self.dimm.queue_free() > 0 {
            return Cycle::ZERO;
        }
        let mut h = Dimm::next_event(&self.dimm);
        if let Some(&(ready, _)) = self.rmw_stage.front() {
            if self.dimm.queue_free() > 0 {
                // Queue-full stalls are covered by the DIMM horizon (a
                // retirement frees the slot); here only the ALU delay.
                h = h.min(ready);
            }
        }
        h
    }

    /// Terminal completion of a tracked operation: split its residency
    /// into queueing and bank service, then park the stamp (now in the
    /// return phase) for the owner to attach to the response.
    ///
    /// For RMWs the split is approximate: the read phase and the ALU
    /// delay land in `BankQueue` (only the final write's service window
    /// counts as `BankService`).
    fn finish_journey(&mut self, id: u64, c: &CompletedAccess) {
        if self.jny.is_empty() {
            return;
        }
        let Some(pos) = self.jny.iter().position(|(jid, _)| *jid == id) else {
            return;
        };
        let (_, mut stamp) = self.jny.swap_remove(pos);
        journey::record(Phase::BankQueue, c.service_started_at.since(stamp.at));
        journey::record(Phase::BankService, c.service_latency());
        stamp.at = c.finished_at;
        stamp.phase = Phase::Return;
        stamp.resp = true;
        self.jny_done.push((id, stamp));
    }
}

fn put_service_req(w: &mut SnapWriter, req: &ServiceReq) {
    w.u64(req.id);
    w.u64(req.coord.pack());
    w.u32(req.bytes);
    w.u8(match req.op {
        ServiceOp::Read => 0,
        ServiceOp::Write => 1,
        ServiceOp::Rmw => 2,
    });
}

fn get_service_req(r: &mut SnapReader<'_>) -> Result<ServiceReq, SnapError> {
    let id = r.u64()?;
    let coord = DramCoord::unpack(r.u64()?);
    let bytes = r.u32()?;
    let op = match r.u8()? {
        0 => ServiceOp::Read,
        1 => ServiceOp::Write,
        2 => ServiceOp::Rmw,
        t => return Err(SnapError::Corrupt(format!("unknown ServiceOp tag {t}"))),
    };
    Ok(ServiceReq {
        id,
        coord,
        bytes,
        op,
    })
}

impl Snapshot for DimmServer {
    const TAG: &'static str = "accel.server";
    const VERSION: u16 = 1;
    fn snap(&self, w: &mut SnapWriter) {
        // Journey stamps (`jny`/`jny_done`) are attribution-only state,
        // excluded from the result digest — a resumed run restarts with
        // them empty. `drain_scratch` is empty between ticks.
        w.component(&self.dimm);
        w.usize(self.backlog.len());
        for req in &self.backlog {
            put_service_req(w, req);
        }
        w.usize(self.done.len());
        for (id, at) in &self.done {
            w.u64(*id);
            w.cycle(*at);
        }
        w.u64(self.rmw_alu_cycles);
        w.usize(self.rmw_stage.len());
        for (ready, req) in &self.rmw_stage {
            w.cycle(*ready);
            put_service_req(w, req);
        }
        w.usize(self.poisoned.len());
        for id in &self.poisoned {
            w.u64(*id);
        }
        w.bool(self.failed);
        w.component(&self.stats);
    }
}

impl Restore for DimmServer {
    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.component(&mut self.dimm)?;
        let n = r.seq_len()?;
        let mut backlog = VecDeque::with_capacity(n);
        for _ in 0..n {
            backlog.push_back(get_service_req(r)?);
        }
        self.backlog = backlog;
        let n = r.seq_len()?;
        let mut done = Vec::with_capacity(n);
        for _ in 0..n {
            let id = r.u64()?;
            done.push((id, r.cycle()?));
        }
        self.done = done;
        self.rmw_alu_cycles = r.u64()?;
        let n = r.seq_len()?;
        let mut rmw_stage = VecDeque::with_capacity(n);
        for _ in 0..n {
            let ready = r.cycle()?;
            rmw_stage.push_back((ready, get_service_req(r)?));
        }
        self.rmw_stage = rmw_stage;
        let n = r.seq_len()?;
        let mut poisoned = Vec::with_capacity(n);
        for _ in 0..n {
            poisoned.push(r.u64()?);
        }
        self.poisoned = poisoned;
        self.failed = r.bool()?;
        r.component(&mut self.stats)?;
        self.drain_scratch.clear();
        self.jny.clear();
        self.jny_done.clear();
        Ok(())
    }
}

impl Tick for DimmServer {
    fn tick(&mut self, now: Cycle) {
        // Dense-kernel fast path: the horizon is conservative-exact, so
        // beyond it neither pump can move, the DIMM tick is a state
        // no-op and there is nothing to drain. Only the DIMM's time
        // high-water needs maintaining for later `enqueued_at` stamps.
        if dense_fastpath_enabled() && DimmServer::next_event(self) > now {
            self.dimm.sync_time(now);
            return;
        }
        // Keep the DIMM's time high-water exact: the ring batch lands
        // before `dimm.tick(now)`, and a fast-forwarding engine may not
        // have ticked the DIMM on the previous cycle.
        self.dimm.sync_time(now);
        self.fill_ring(now);
        self.dimm.consume_ring(&mut self.ring);
        self.dimm.tick(now);
        // Reuse one scratch buffer for completions (taken out of `self`
        // so the loop body can borrow the other fields mutably).
        let mut completed = std::mem::take(&mut self.drain_scratch);
        self.dimm.drain_completed_into(&mut completed);
        // Tick-local accumulator: one sorted-array lookup per tick
        // instead of one per retiring atomic (DESIGN.md §15.5).
        let mut atomic_ops = 0u64;
        for c in completed.drain(..) {
            let id = c.request.tag & !PHASE_MASK;
            match c.request.tag & PHASE_MASK {
                PHASE_SINGLE => {
                    if c.poisoned {
                        self.poisoned.push(id);
                    }
                    self.finish_journey(id, &c);
                    self.done.push((id, c.finished_at));
                }
                PHASE_RMW_READ if c.poisoned => {
                    // UE on the atomic's read phase: the operand is
                    // garbage, so the RMW aborts instead of writing back.
                    self.poisoned.push(id);
                    self.finish_journey(id, &c);
                    self.done.push((id, c.finished_at));
                }
                PHASE_RMW_READ => {
                    // Atomic engine: arithmetic, then the write phase.
                    atomic_ops += 1;
                    let ready =
                        c.finished_at + beacon_sim::cycle::Duration::new(self.rmw_alu_cycles);
                    self.rmw_stage.push_back((
                        ready,
                        ServiceReq {
                            id,
                            coord: c.request.coord,
                            bytes: c.request.bytes,
                            op: ServiceOp::Rmw,
                        },
                    ));
                }
                PHASE_RMW_WRITE => {
                    self.finish_journey(id, &c);
                    self.done.push((id, c.finished_at));
                }
                _ => unreachable!("invalid phase bits"),
            }
        }
        self.drain_scratch = completed;
        // `Stats::add_id` ignores zero, so idle drains cost one branch.
        self.stats.add_id(self.atomic_ops_id, atomic_ops);
    }

    fn is_idle(&self) -> bool {
        self.backlog.is_empty() && self.rmw_stage.is_empty() && self.dimm.is_idle()
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let h = DimmServer::next_event(self);
        if h == Cycle::NEVER {
            None
        } else {
            Some(h.max(now.next()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beacon_dram::module::AccessMode;
    use beacon_sim::engine::Engine;

    fn server() -> DimmServer {
        let mut cfg = DimmConfig::paper(AccessMode::PerChip);
        cfg.refresh_enabled = false;
        DimmServer::new(cfg)
    }

    fn coord(group: u32, row: u64) -> DramCoord {
        DramCoord {
            rank: 0,
            group,
            bank: 0,
            row,
            col: 0,
        }
    }

    #[test]
    fn read_completes_with_id() {
        let mut s = server();
        s.request(42, coord(0, 5), 32, ServiceOp::Read);
        let mut e = Engine::new();
        e.run(&mut s);
        let done = s.drain_done();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, 42);
    }

    #[test]
    fn rmw_is_read_then_write() {
        let mut s = server();
        s.request(7, coord(1, 9), 1, ServiceOp::Rmw);
        let mut e = Engine::new();
        e.run(&mut s);
        let done = s.drain_done();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, 7);
        assert_eq!(s.dimm().stats().get("dram.cmd.read"), 1);
        assert_eq!(s.dimm().stats().get("dram.cmd.write"), 1);
        assert_eq!(s.stats().get("server.atomic_ops"), 1);
    }

    #[test]
    fn rmw_takes_longer_than_read() {
        let mut sr = server();
        sr.request(1, coord(0, 3), 4, ServiceOp::Read);
        let mut e = Engine::new();
        e.run(&mut sr);
        let t_read = sr.drain_done()[0].1;

        let mut sm = server();
        sm.request(1, coord(0, 3), 4, ServiceOp::Rmw);
        let mut e = Engine::new();
        e.run(&mut sm);
        let t_rmw = sm.drain_done()[0].1;
        assert!(t_rmw > t_read);
    }

    #[test]
    fn backlog_absorbs_bursts_beyond_queue_depth() {
        let mut s = server();
        for i in 0..200 {
            s.request(i, coord((i % 16) as u32, i), 4, ServiceOp::Read);
        }
        assert!(s.backlog_len() > 0);
        let mut e = Engine::new();
        e.run(&mut s);
        assert_eq!(s.drain_done().len(), 200);
    }

    #[test]
    #[should_panic(expected = "service id too large")]
    fn oversized_id_panics() {
        let mut s = server();
        s.request(1 << 62, coord(0, 0), 4, ServiceOp::Read);
    }

    #[test]
    fn writes_complete_too() {
        let mut s = server();
        s.request(9, coord(2, 4), 8, ServiceOp::Write);
        let mut e = Engine::new();
        e.run(&mut s);
        assert_eq!(s.drain_done()[0].0, 9);
    }

    #[test]
    fn ue_marks_the_service_id_poisoned() {
        let mut s = server();
        s.set_ue_faults(beacon_sim::faults::FaultStream::one_shot(Cycle::ZERO));
        s.request(5, coord(0, 2), 32, ServiceOp::Read);
        let mut e = Engine::new();
        e.run(&mut s);
        // The completion is still reported (the requester must observe
        // it to retry), but flagged poisoned.
        assert_eq!(s.drain_done()[0].0, 5);
        let mut poisoned = Vec::new();
        s.drain_poisoned_into(&mut poisoned);
        assert_eq!(poisoned, vec![5]);
    }

    #[test]
    fn poisoned_rmw_aborts_without_the_write_phase() {
        let mut s = server();
        s.set_ue_faults(beacon_sim::faults::FaultStream::one_shot(Cycle::ZERO));
        s.request(3, coord(1, 1), 4, ServiceOp::Rmw);
        let mut e = Engine::new();
        e.run(&mut s);
        assert_eq!(s.drain_done()[0].0, 3);
        let mut poisoned = Vec::new();
        s.drain_poisoned_into(&mut poisoned);
        assert_eq!(poisoned, vec![3]);
        // No write-back happened: the aborted RMW issued its read only.
        assert_eq!(s.dimm().stats().get("dram.cmd.write"), 0);
    }

    #[test]
    fn fail_aborts_backlog_stage_queue_and_undrained_completions() {
        let mut s = server();
        for i in 0..200 {
            s.request(i, coord((i % 16) as u32, i), 4, ServiceOp::Read);
        }
        s.request(500, coord(0, 30), 4, ServiceOp::Rmw);
        // Advance a little so work spreads across the DIMM queue, the
        // backlog and (possibly) undrained completions.
        for c in 0..40u64 {
            s.tick(Cycle::new(c));
        }
        let mut lost = Vec::new();
        s.fail_into(&mut lost);
        lost.sort_unstable();
        // Everything not yet drained by the owner is reported exactly
        // once, including ids that had already completed.
        assert_eq!(lost.len(), 201);
        lost.dedup();
        assert_eq!(lost.len(), 201);
        assert!(s.is_failed());
        assert!(s.is_idle());
        assert!(s.drain_done().is_empty());
        assert_eq!(s.next_event(), Cycle::NEVER);
    }
}
