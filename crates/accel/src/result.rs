//! Raw measurement bundle of one accelerator run.
//!
//! Systems (MEDAL, NEST, BEACON-D/S) produce a [`RunResult`]; the energy
//! model in `beacon-core` turns the counters into joules and the
//! experiment drivers into figures.

use std::fmt::Write as _;

use beacon_sim::journey::Attribution;
use beacon_sim::stats::{Fnv64, Histogram, Stats};
use serde::{Deserialize, Serialize};

/// RAS outcome of a run that executed under a fault schedule: what
/// broke, what it cost, and how the system degraded instead of dying.
///
/// Deliberately **excluded** from [`RunResult::digest`]: the digest pins
/// the simulated machine state, and a fault-free run must stay
/// bit-identical whether or not the (quiet) fault machinery was armed.
/// Fault effects that change machine state (retry cycles, re-issued
/// accesses, re-mapped placements) show up in the digested counters on
/// their own.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradedRun {
    /// Seed of the fault schedule the run executed under.
    pub seed: u64,
    /// Whole-DIMM hard failures executed.
    pub failed_dimms: u64,
    /// Pool capacity lost to failed DIMMs, in bytes.
    pub lost_capacity_bytes: u64,
    /// Link flits that arrived with a bad CRC and were retried.
    pub crc_errors: u64,
    /// Extra link cycles burned by CRC retries and their backoff.
    pub retry_cycles: u64,
    /// Switch-port flap (down-window) events.
    pub port_flaps: u64,
    /// Uncorrectable DRAM errors returned as poisoned reads.
    pub dimm_ue: u64,
    /// Requests nak'd back to their requester (dead DIMM or poison).
    pub naks: u64,
    /// Accesses re-issued after a nak.
    pub requeued: u64,
    /// Accesses abandoned after exhausting their retry budget.
    pub dropped: u64,
    /// Placements re-homed off the dead DIMM by the MMF.
    pub remap_regions: u64,
    /// Bytes the MMF re-homed onto surviving DIMMs.
    pub moved_bytes: u64,
    /// Estimated link cost of that migration, in cycles.
    pub remap_cost_cycles: u64,
}

impl DegradedRun {
    /// True when no fault of any kind actually fired.
    pub fn is_clean(&self) -> bool {
        self.failed_dimms == 0
            && self.crc_errors == 0
            && self.port_flaps == 0
            && self.dimm_ue == 0
            && self.naks == 0
            && self.dropped == 0
    }
}

/// Counters and outcomes of one full system run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Cycles until the workload drained.
    pub cycles: u64,
    /// Tasks completed.
    pub tasks: usize,
    /// Merged DRAM counters of every DIMM (`dram.*`).
    pub dram: Stats,
    /// Merged communication counters of every link/switch (`cxl.*`,
    /// `switch.*`).
    pub comm: Stats,
    /// Merged engine/server counters (`engine.*`, `server.*`).
    pub engine: Stats,
    /// Integral of busy-PE count over time.
    pub pe_busy_cycles: u64,
    /// Total DRAM chips in the system (background energy).
    pub total_chips: u64,
    /// Per-DIMM chip-access histograms (Fig. 13 data).
    pub chip_histograms: Vec<Histogram>,
    /// RAS report when the run executed under a fault schedule
    /// (`None` on a pristine machine). Not part of the digest — see
    /// [`DegradedRun`].
    pub degraded: Option<DegradedRun>,
    /// Request-journey attribution report when the run executed with
    /// sampling enabled (`None` otherwise). Like [`DegradedRun`], this
    /// is observability metadata: **excluded** from the digest and from
    /// serialization, so enabling attribution can never perturb an
    /// equivalence check.
    #[serde(skip)]
    pub attribution: Option<Attribution>,
}

impl RunResult {
    /// Tasks per kilocycle — the throughput figure used for speedups.
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.tasks as f64 * 1000.0 / self.cycles as f64
    }

    /// Wall-clock seconds at a given tCK.
    pub fn seconds(&self, tck_ps: u64) -> f64 {
        self.cycles as f64 * tck_ps as f64 * 1e-12
    }

    /// A stable FNV-1a digest over every field — cycles, task count,
    /// every per-component counter and energy accumulator, the PE busy
    /// integral and all chip histograms.
    ///
    /// Two runs digest equal iff they are observationally identical, so
    /// equivalence tests (sequential vs parallel, golden seed pins)
    /// compare one `u64`. When digests differ, [`RunResult::diff`]
    /// locates the first divergent quantity.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(self.cycles);
        h.write_u64(self.tasks as u64);
        h.write_str("dram");
        self.dram.digest_into(&mut h);
        h.write_str("comm");
        self.comm.digest_into(&mut h);
        h.write_str("engine");
        self.engine.digest_into(&mut h);
        h.write_u64(self.pe_busy_cycles);
        h.write_u64(self.total_chips);
        h.write_u64(self.chip_histograms.len() as u64);
        for hist in &self.chip_histograms {
            hist.digest_into(&mut h);
        }
        h.finish()
    }

    /// Structured diff against another result: a report naming every
    /// divergent scalar, counter, accumulator and histogram bucket (the
    /// first divergence per component group leads). Returns `None` when
    /// the results are identical.
    pub fn diff(&self, other: &RunResult) -> Option<String> {
        let mut out = String::new();
        let mut scalar = |name: &str, a: u64, b: u64| {
            if a != b {
                let _ = writeln!(out, "{name}: {a} != {b}");
            }
        };
        scalar("cycles", self.cycles, other.cycles);
        scalar("tasks", self.tasks as u64, other.tasks as u64);
        scalar("pe_busy_cycles", self.pe_busy_cycles, other.pe_busy_cycles);
        scalar("total_chips", self.total_chips, other.total_chips);
        for (group, a, b) in [
            ("dram", &self.dram, &other.dram),
            ("comm", &self.comm, &other.comm),
            ("engine", &self.engine, &other.engine),
        ] {
            Self::diff_stats(group, a, b, &mut out);
        }
        if self.chip_histograms.len() != other.chip_histograms.len() {
            let _ = writeln!(
                out,
                "chip_histograms: {} DIMMs != {} DIMMs",
                self.chip_histograms.len(),
                other.chip_histograms.len()
            );
        } else {
            for (i, (a, b)) in self
                .chip_histograms
                .iter()
                .zip(&other.chip_histograms)
                .enumerate()
            {
                if a.buckets() != b.buckets() {
                    let chip = a
                        .buckets()
                        .iter()
                        .zip(b.buckets())
                        .position(|(x, y)| x != y)
                        .unwrap_or(0);
                    let _ = writeln!(
                        out,
                        "chip_histograms[{i}] chip {chip}: {} != {}",
                        a.buckets().get(chip).copied().unwrap_or(0),
                        b.buckets().get(chip).copied().unwrap_or(0),
                    );
                }
            }
        }
        if out.is_empty() {
            None
        } else {
            Some(out)
        }
    }

    fn diff_stats(group: &str, a: &Stats, b: &Stats, out: &mut String) {
        let keys: std::collections::BTreeSet<&str> = a
            .iter()
            .map(|(k, _)| k)
            .chain(b.iter().map(|(k, _)| k))
            .collect();
        for k in keys {
            let (x, y) = (a.get(k), b.get(k));
            if x != y {
                let _ = writeln!(out, "{group}.{k}: {x} != {y}");
            }
        }
        let fkeys: std::collections::BTreeSet<&str> = a
            .iter_f64()
            .map(|(k, _)| k)
            .chain(b.iter_f64().map(|(k, _)| k))
            .collect();
        for k in fkeys {
            let (x, y) = (a.get_f64(k), b.get_f64(k));
            if x.to_bits() != y.to_bits() {
                let _ = writeln!(out, "{group}.{k}: {x} != {y}");
            }
        }
    }

    /// Merged per-chip histogram across all DIMMs.
    pub fn merged_chip_histogram(&self) -> Option<Histogram> {
        let mut it = self.chip_histograms.iter();
        let first = it.next()?;
        let mut merged = first.clone();
        for h in it {
            if h.len() == merged.len() {
                merged.merge(h);
            }
        }
        Some(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_is_tasks_per_kilocycle() {
        let r = RunResult {
            cycles: 10_000,
            tasks: 50,
            dram: Stats::new(),
            comm: Stats::new(),
            engine: Stats::new(),
            pe_busy_cycles: 0,
            total_chips: 0,
            chip_histograms: vec![],
            degraded: None,
            attribution: None,
        };
        assert_eq!(r.throughput(), 5.0);
        assert!((r.seconds(1250) - 1.25e-5).abs() < 1e-18);
    }

    fn sample() -> RunResult {
        let mut dram = Stats::new();
        dram.add("dram.reads", 42);
        let mut engine = Stats::new();
        engine.add_f64("engine.util", 0.5);
        let mut hist = Histogram::new(4);
        hist.record(2, 1);
        RunResult {
            cycles: 10_000,
            tasks: 50,
            dram,
            comm: Stats::new(),
            engine,
            pe_busy_cycles: 123,
            total_chips: 8,
            chip_histograms: vec![hist],
            degraded: None,
            attribution: None,
        }
    }

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        let a = sample();
        let b = sample();
        assert_eq!(a.digest(), b.digest());
        assert!(a.diff(&b).is_none());

        let mut c = sample();
        c.dram.incr("dram.reads");
        assert_ne!(a.digest(), c.digest());

        let mut d = sample();
        d.chip_histograms[0].record(3, 1);
        assert_ne!(a.digest(), d.digest());
    }

    #[test]
    fn degraded_report_stays_out_of_the_digest() {
        // The digest pins machine state; the RAS report is metadata. A
        // quiet armed run must digest identically to an unarmed one.
        let a = sample();
        let mut b = sample();
        b.degraded = Some(DegradedRun {
            seed: 42,
            failed_dimms: 1,
            naks: 7,
            ..DegradedRun::default()
        });
        assert_eq!(a.digest(), b.digest());
        assert!(a.diff(&b).is_none());
        assert!(!b.degraded.unwrap().is_clean());
        assert!(DegradedRun::default().is_clean());
    }

    #[test]
    fn attribution_report_stays_out_of_the_digest() {
        // Same contract as the RAS report: attribution is observability
        // metadata, so a sampled run digests identically to a blind one.
        let a = sample();
        let mut b = sample();
        b.attribution = Some(Attribution {
            sample_every: 8,
            seen: 100,
            tracked: 13,
            ..Default::default()
        });
        assert_eq!(a.digest(), b.digest());
        assert!(a.diff(&b).is_none());
    }

    #[test]
    fn diff_names_the_divergent_counter() {
        let a = sample();
        let mut b = sample();
        b.cycles += 1;
        b.dram.incr("dram.reads");
        b.engine.add_f64("engine.util", 0.25);
        b.chip_histograms[0].record(1, 1);
        let report = a.diff(&b).expect("divergent");
        assert!(report.contains("cycles: 10000 != 10001"), "{report}");
        assert!(report.contains("dram.dram.reads: 42 != 43"), "{report}");
        assert!(
            report.contains("engine.engine.util: 0.5 != 0.75"),
            "{report}"
        );
        assert!(
            report.contains("chip_histograms[0] chip 1: 0 != 1"),
            "{report}"
        );
    }

    #[test]
    fn zero_cycles_is_zero_throughput() {
        let r = RunResult {
            cycles: 0,
            tasks: 50,
            dram: Stats::new(),
            comm: Stats::new(),
            engine: Stats::new(),
            pe_busy_cycles: 0,
            total_chips: 0,
            chip_histograms: vec![],
            degraded: None,
            attribution: None,
        };
        assert_eq!(r.throughput(), 0.0);
        assert!(r.merged_chip_histogram().is_none());
    }
}
