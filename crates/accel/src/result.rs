//! Raw measurement bundle of one accelerator run.
//!
//! Systems (MEDAL, NEST, BEACON-D/S) produce a [`RunResult`]; the energy
//! model in `beacon-core` turns the counters into joules and the
//! experiment drivers into figures.

use beacon_sim::stats::{Histogram, Stats};
use serde::{Deserialize, Serialize};

/// Counters and outcomes of one full system run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Cycles until the workload drained.
    pub cycles: u64,
    /// Tasks completed.
    pub tasks: usize,
    /// Merged DRAM counters of every DIMM (`dram.*`).
    pub dram: Stats,
    /// Merged communication counters of every link/switch (`cxl.*`,
    /// `switch.*`).
    pub comm: Stats,
    /// Merged engine/server counters (`engine.*`, `server.*`).
    pub engine: Stats,
    /// Integral of busy-PE count over time.
    pub pe_busy_cycles: u64,
    /// Total DRAM chips in the system (background energy).
    pub total_chips: u64,
    /// Per-DIMM chip-access histograms (Fig. 13 data).
    pub chip_histograms: Vec<Histogram>,
}

impl RunResult {
    /// Tasks per kilocycle — the throughput figure used for speedups.
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.tasks as f64 * 1000.0 / self.cycles as f64
    }

    /// Wall-clock seconds at a given tCK.
    pub fn seconds(&self, tck_ps: u64) -> f64 {
        self.cycles as f64 * tck_ps as f64 * 1e-12
    }

    /// Merged per-chip histogram across all DIMMs.
    pub fn merged_chip_histogram(&self) -> Option<Histogram> {
        let mut it = self.chip_histograms.iter();
        let first = it.next()?;
        let mut merged = first.clone();
        for h in it {
            if h.len() == merged.len() {
                merged.merge(h);
            }
        }
        Some(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_is_tasks_per_kilocycle() {
        let r = RunResult {
            cycles: 10_000,
            tasks: 50,
            dram: Stats::new(),
            comm: Stats::new(),
            engine: Stats::new(),
            pe_busy_cycles: 0,
            total_chips: 0,
            chip_histograms: vec![],
        };
        assert_eq!(r.throughput(), 5.0);
        assert!((r.seconds(1250) - 1.25e-5).abs() < 1e-18);
    }

    #[test]
    fn zero_cycles_is_zero_throughput() {
        let r = RunResult {
            cycles: 0,
            tasks: 50,
            dram: Stats::new(),
            comm: Stats::new(),
            engine: Stats::new(),
            pe_busy_cycles: 0,
            total_chips: 0,
            chip_histograms: vec![],
        };
        assert_eq!(r.throughput(), 0.0);
        assert!(r.merged_chip_histogram().is_none());
    }
}
