//! NEST: the DDR-DIMM based k-mer counting baseline (ICCAD'20).
//!
//! NEST uses the same DIMM-NDP hardware as MEDAL but a *multi-pass*
//! counting strategy to avoid random remote accesses (paper §IV-D):
//!
//! 1. **Pass 1** — every DIMM builds a *local* counting Bloom filter over
//!    the entire input (all CBF updates stay inside the DIMM),
//! 2. **merge** — the per-DIMM filters are merged into a global filter
//!    and redistributed (bulk inter-DIMM traffic), and
//! 3. **Pass 2** — every DIMM counts its share of the input against its
//!    local copy of the global filter.
//!
//! The price is processing the whole input twice — exactly what
//! BEACON-S's single-pass optimisation removes.

use serde::{Deserialize, Serialize};

use beacon_genomics::trace::{Access, AppKind, Region, Step, TaskTrace};

use crate::medal::{Medal, MedalConfig, RegionSpec};
use crate::result::RunResult;
use crate::translate::{Placement, RegionMap};

/// Configuration of the NEST system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NestConfig {
    /// The underlying DIMM-NDP hardware (PE latency should be the k-mer
    /// counting engine's 59 cycles).
    pub hw: MedalConfig,
    /// Counting-Bloom-filter size in bytes.
    pub cbf_bytes: u64,
    /// Bytes each merge task moves (one task = one bulk chunk).
    pub merge_chunk_bytes: u64,
}

impl NestConfig {
    /// The paper's NEST configuration over a CBF of `cbf_bytes`.
    pub fn paper(cbf_bytes: u64) -> Self {
        NestConfig {
            hw: MedalConfig::paper(AppKind::KmerCounting.pe_latency_cycles()),
            cbf_bytes,
            merge_chunk_bytes: 4096,
        }
    }

    /// Idealised-communication variant.
    pub fn idealized(mut self) -> Self {
        self.hw = self.hw.idealized();
        self
    }
}

/// The NEST system runner.
#[derive(Debug, Clone)]
pub struct Nest {
    cfg: NestConfig,
}

impl Nest {
    /// Creates the runner.
    pub fn new(cfg: NestConfig) -> Self {
        Nest { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &NestConfig {
        &self.cfg
    }

    fn local_maps(&self) -> Vec<RegionMap> {
        use beacon_dram::address::Interleave;
        let geometry = self.cfg.hw.geometry;
        self.cfg
            .hw
            .nodes()
            .into_iter()
            .map(|node| {
                let mut map = RegionMap::new(geometry);
                map.place(
                    Region::Bloom,
                    Placement::single(
                        node,
                        0,
                        Interleave::ChipLevel {
                            block_bytes: 32,
                            groups: geometry.chips_per_rank,
                        },
                    )
                    .with_sparse_rows(64),
                );
                map
            })
            .collect()
    }

    /// The merge traces: every module bulk-reads the full global CBF
    /// (the remote 3/4 is the redistribution traffic).
    fn merge_traces(&self) -> Vec<TaskTrace> {
        let chunk = self.cfg.merge_chunk_bytes;
        let n_chunks = self.cfg.cbf_bytes.div_ceil(chunk);
        let mut traces = Vec::new();
        for c in 0..n_chunks {
            let mut accesses = Vec::new();
            let base = c * chunk;
            let mut off = 0;
            while off < chunk && base + off < self.cfg.cbf_bytes {
                let take = 64.min(self.cfg.cbf_bytes - (base + off)) as u32;
                accesses.push(Access::read(Region::Bloom, base + off, take));
                off += 64;
            }
            traces.push(TaskTrace::new(
                AppKind::KmerCounting,
                vec![Step::posted(accesses)],
            ));
        }
        traces
    }

    /// Runs the full multi-pass pipeline over a counting workload
    /// (`traces` are per-read CBF-update traces, replayed in both
    /// passes).
    pub fn run_multipass(&self, traces: &[TaskTrace]) -> RunResult {
        // Pass 1: local CBF per DIMM.
        let mut pass1 = Medal::new(self.cfg.hw, self.local_maps());
        pass1.submit_round_robin(traces.iter().cloned());
        let r1 = pass1.run();

        // Merge: bulk-read the global filter (striped) from every DIMM.
        let merge_spec = [RegionSpec::spatial(Region::Bloom, self.cfg.cbf_bytes)];
        let merge_map = self.cfg.hw.region_map(&merge_spec);
        let mut merge = Medal::with_shared_map(self.cfg.hw, merge_map);
        let n_modules = self.cfg.hw.dimm_count() as usize;
        for m in 0..n_modules {
            for t in self.merge_traces() {
                merge.submit_to(m, t);
            }
        }
        let r2 = merge.run();

        // Pass 2: count again against the (now local) global filter.
        let mut pass2 = Medal::new(self.cfg.hw, self.local_maps());
        pass2.submit_round_robin(traces.iter().cloned());
        let r3 = pass2.run();

        combine(vec![r1, r2, r3], traces.len())
    }

    /// Runs only a single local pass (a lower bound used in tests).
    pub fn run_single_local_pass(&self, traces: &[TaskTrace]) -> RunResult {
        let mut pass = Medal::new(self.cfg.hw, self.local_maps());
        pass.submit_round_robin(traces.iter().cloned());
        pass.run()
    }
}

/// Combines sequential phase results into one (cycles add, counters
/// merge, `tasks` is the caller's workload size).
pub fn combine(results: Vec<RunResult>, tasks: usize) -> RunResult {
    let mut it = results.into_iter();
    let mut acc = it.next().expect("at least one phase");
    for r in it {
        acc.cycles += r.cycles;
        acc.dram.merge(&r.dram);
        acc.comm.merge(&r.comm);
        acc.engine.merge(&r.engine);
        acc.pe_busy_cycles += r.pe_busy_cycles;
        for (a, b) in acc.chip_histograms.iter_mut().zip(&r.chip_histograms) {
            if a.len() == b.len() {
                a.merge(b);
            }
        }
    }
    acc.tasks = tasks;
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use beacon_genomics::genome::{Genome, GenomeId};
    use beacon_genomics::kmer::KmerCounter;
    use beacon_genomics::reads::ReadSampler;

    fn kmer_traces(n: usize, cbf_bytes: u64) -> Vec<TaskTrace> {
        let g = Genome::synthetic(GenomeId::Human, 3000, 3);
        let counter = KmerCounter::new(28, cbf_bytes as usize, 3, 7);
        let mut sampler = ReadSampler::new(&g, 60, 0.01, 4);
        (0..n)
            .map(|_| counter.trace_read(&sampler.next_read()))
            .collect()
    }

    fn small_cfg(cbf_bytes: u64) -> NestConfig {
        let mut cfg = NestConfig::paper(cbf_bytes);
        cfg.hw.pes_per_dimm = 8;
        cfg.hw.refresh_enabled = false;
        cfg
    }

    #[test]
    fn multipass_runs_and_counts_tasks() {
        let cbf = 64 * 1024;
        let traces = kmer_traces(12, cbf);
        let nest = Nest::new(small_cfg(cbf));
        let r = nest.run_multipass(&traces);
        assert_eq!(r.tasks, 12);
        assert!(r.cycles > 0);
        // Atomic RMWs happened.
        assert!(r.engine.get("server.atomic_ops") > 0);
    }

    #[test]
    fn multipass_costs_more_than_single_pass() {
        let cbf = 64 * 1024;
        let traces = kmer_traces(12, cbf);
        let nest = Nest::new(small_cfg(cbf));
        let multi = nest.run_multipass(&traces);
        let single = nest.run_single_local_pass(&traces);
        assert!(multi.cycles > single.cycles);
    }

    #[test]
    fn merge_generates_inter_dimm_traffic() {
        let cbf = 64 * 1024;
        let traces = kmer_traces(6, cbf);
        let nest = Nest::new(small_cfg(cbf));
        let multi = nest.run_multipass(&traces);
        let single = nest.run_single_local_pass(&traces);
        assert!(multi.comm.get("cxl.wire_bytes") > single.comm.get("cxl.wire_bytes"));
    }

    #[test]
    fn merge_trace_covers_whole_cbf() {
        let cbf = 10_000;
        let nest = Nest::new(small_cfg(cbf));
        let total: u64 = nest.merge_traces().iter().map(TaskTrace::total_bytes).sum();
        assert_eq!(total, cbf);
    }

    #[test]
    fn idealized_merge_is_not_slower() {
        // NEST's passes are local, so idealised communication only
        // shortens the merge. Instantaneous delivery also interleaves the
        // four requester streams at the target controllers, which can
        // cost a few percent of FR-FCFS row locality — allow that
        // scheduling noise but nothing more.
        let cbf = 64 * 1024;
        let traces = kmer_traces(8, cbf);
        let real = Nest::new(small_cfg(cbf)).run_multipass(&traces);
        let ideal = Nest::new(small_cfg(cbf).idealized()).run_multipass(&traces);
        assert!(
            (ideal.cycles as f64) < real.cycles as f64 * 1.08,
            "ideal {} vs real {}",
            ideal.cycles,
            real.cycles
        );
    }
}
