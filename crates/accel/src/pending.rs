//! Requester-side aggregation of multi-segment accesses.
//!
//! The address translator may split one logical access into several
//! physical segments (stripe or interleave boundaries). The issuing task
//! must only resume when *all* segments have returned; a [`PendingTable`]
//! tracks that fan-in and hands back the original [`AccessToken`] when
//! the last segment lands.

use beacon_sim::snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};

use crate::task::AccessToken;

#[derive(Debug, Clone, Copy)]
struct Entry {
    token: AccessToken,
    remaining: u32,
    blocking: bool,
    in_use: bool,
    /// A segment failed (nak / poisoned data); the token was already
    /// handed back for retry and must not be released again.
    poisoned: bool,
}

/// Slab of in-flight logical accesses awaiting their segments.
#[derive(Debug, Clone, Default)]
pub struct PendingTable {
    entries: Vec<Entry>,
    free: Vec<u32>,
    peak: usize,
}

impl PendingTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        PendingTable::default()
    }

    /// Registers an access split into `segments` pieces; returns the slab
    /// id to carry on every segment.
    ///
    /// # Panics
    /// Panics when `segments` is zero.
    pub fn alloc(&mut self, token: AccessToken, segments: u32, blocking: bool) -> u64 {
        assert!(segments > 0, "access with zero segments");
        let entry = Entry {
            token,
            remaining: segments,
            blocking,
            in_use: true,
            poisoned: false,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.entries[i as usize] = entry;
                i
            }
            None => {
                self.entries.push(entry);
                (self.entries.len() - 1) as u32
            }
        };
        self.peak = self.peak.max(self.in_flight());
        idx as u64
    }

    /// Records the completion of one segment of access `id`. Returns
    /// `Some((token, blocking))` when this was the last segment.
    ///
    /// # Panics
    /// Panics when `id` is not an in-flight access.
    pub fn complete_one(&mut self, id: u64) -> Option<(AccessToken, bool)> {
        let e = &mut self.entries[id as usize];
        assert!(e.in_use, "completion for idle pending slot {id}");
        debug_assert!(e.remaining > 0);
        e.remaining -= 1;
        if e.remaining == 0 {
            e.in_use = false;
            self.free.push(id as u32);
            // A poisoned access already handed its token back through
            // `poison_one`; the stragglers just drain the slot.
            if e.poisoned {
                return None;
            }
            Some((e.token, e.blocking))
        } else {
            None
        }
    }

    /// Records a *failed* segment of access `id` — a nak or a poisoned
    /// response. The first failure poisons the entry and returns
    /// `Some((token, blocking))` so the requester can retry the whole
    /// logical access; any segments still in flight keep draining
    /// through [`PendingTable::complete_one`] / further `poison_one`
    /// calls without releasing the token a second time.
    ///
    /// # Panics
    /// Panics when `id` is not an in-flight access.
    pub fn poison_one(&mut self, id: u64) -> Option<(AccessToken, bool)> {
        let e = &mut self.entries[id as usize];
        assert!(e.in_use, "nak for idle pending slot {id}");
        debug_assert!(e.remaining > 0);
        e.remaining -= 1;
        let first = !e.poisoned;
        e.poisoned = true;
        if e.remaining == 0 {
            e.in_use = false;
            self.free.push(id as u32);
        }
        if first {
            Some((e.token, e.blocking))
        } else {
            None
        }
    }

    /// Accesses currently in flight.
    pub fn in_flight(&self) -> usize {
        self.entries.len() - self.free.len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.in_flight() == 0
    }

    /// Largest number of simultaneously in-flight accesses observed.
    pub fn peak(&self) -> usize {
        self.peak
    }
}

impl Snapshot for PendingTable {
    const TAG: &'static str = "accel.pending";
    const VERSION: u16 = 1;
    fn snap(&self, w: &mut SnapWriter) {
        w.usize(self.entries.len());
        for e in &self.entries {
            w.u64(e.token.encode());
            w.u32(e.remaining);
            w.bool(e.blocking);
            w.bool(e.in_use);
            w.bool(e.poisoned);
        }
        w.usize(self.free.len());
        for f in &self.free {
            w.u32(*f);
        }
        w.usize(self.peak);
    }
}

impl Restore for PendingTable {
    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.seq_len()?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            entries.push(Entry {
                token: AccessToken::decode(r.u64()?),
                remaining: r.u32()?,
                blocking: r.bool()?,
                in_use: r.bool()?,
                poisoned: r.bool()?,
            });
        }
        self.entries = entries;
        let n = r.seq_len()?;
        let mut free = Vec::with_capacity(n);
        for _ in 0..n {
            let f = r.u32()?;
            if f as usize >= self.entries.len() {
                return Err(SnapError::Corrupt(format!(
                    "free pending slot {f} of {}",
                    self.entries.len()
                )));
            }
            free.push(f);
        }
        self.free = free;
        self.peak = r.usize()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskId;

    fn token(t: u32) -> AccessToken {
        AccessToken {
            task: TaskId(t),
            step: 0,
            idx: 0,
        }
    }

    #[test]
    fn single_segment_completes_immediately() {
        let mut p = PendingTable::new();
        let id = p.alloc(token(1), 1, true);
        let (tok, blocking) = p.complete_one(id).expect("last segment");
        assert_eq!(tok.task, TaskId(1));
        assert!(blocking);
        assert!(p.is_empty());
    }

    #[test]
    fn multi_segment_waits_for_all() {
        let mut p = PendingTable::new();
        let id = p.alloc(token(2), 3, false);
        assert!(p.complete_one(id).is_none());
        assert!(p.complete_one(id).is_none());
        let (tok, blocking) = p.complete_one(id).unwrap();
        assert_eq!(tok.task, TaskId(2));
        assert!(!blocking);
    }

    #[test]
    fn slots_are_recycled() {
        let mut p = PendingTable::new();
        let a = p.alloc(token(1), 1, true);
        p.complete_one(a);
        let b = p.alloc(token(2), 1, true);
        assert_eq!(a, b, "freed slot should be reused");
        assert_eq!(p.peak(), 1);
    }

    #[test]
    #[should_panic(expected = "idle pending slot")]
    fn double_completion_panics() {
        let mut p = PendingTable::new();
        let id = p.alloc(token(1), 1, true);
        p.complete_one(id);
        p.complete_one(id);
    }

    #[test]
    fn poison_releases_the_token_once_then_drains() {
        let mut p = PendingTable::new();
        let id = p.alloc(token(7), 3, true);
        // First nak: token handed back for retry.
        let (tok, blocking) = p.poison_one(id).expect("first failure yields the token");
        assert_eq!(tok.task, TaskId(7));
        assert!(blocking);
        // Remaining segments (clean or nak'd) drain silently.
        assert!(p.complete_one(id).is_none());
        assert!(p.poison_one(id).is_none());
        assert!(p.is_empty(), "slot freed after the last straggler");
        // The slot is reusable and starts clean.
        let id2 = p.alloc(token(8), 1, false);
        let (tok2, _) = p.complete_one(id2).expect("fresh entry completes");
        assert_eq!(tok2.task, TaskId(8));
    }

    #[test]
    fn in_flight_counts() {
        let mut p = PendingTable::new();
        let a = p.alloc(token(1), 2, true);
        let _b = p.alloc(token(2), 1, true);
        assert_eq!(p.in_flight(), 2);
        p.complete_one(a);
        assert_eq!(p.in_flight(), 2, "partial completion keeps slot");
    }
}
