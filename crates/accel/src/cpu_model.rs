//! The analytical 48-thread CPU baseline (paper Table I).
//!
//! The paper normalises every result to software on a dual-socket Xeon
//! E5-2680 v3 (48 threads, 2.5 GHz, four DDR4-1600 channels). Running
//! BWA-MEM/SMALT/BFCounter/Shouji is out of scope for a simulator
//! artifact, so the baseline is an analytical roofline over the *same
//! workload summary* the accelerators execute: the CPU is limited by
//! whichever is slower of
//!
//! * **memory**: every fine-grained random access costs at least one
//!   64 B cache line over the channels at a random-access-derated
//!   bandwidth, and
//! * **compute**: each kernel step costs a per-application number of
//!   instructions across the 48 threads.
//!
//! This reproduces the *shape* that matters — the CPU wastes most of each
//! cache line on fine-grained accesses and has far less usable random
//! bandwidth than in-DIMM NDP.

use serde::{Deserialize, Serialize};

use beacon_genomics::trace::{AppKind, TaskTrace};

/// Summary of a workload: everything the roofline model needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadSummary {
    /// Application.
    pub app: AppKind,
    /// Number of tasks (reads / candidates).
    pub tasks: u64,
    /// Total dependency steps.
    pub steps: u64,
    /// Total memory accesses.
    pub accesses: u64,
    /// Total useful bytes moved.
    pub bytes: u64,
}

impl WorkloadSummary {
    /// Builds the summary of a batch of traces.
    ///
    /// # Panics
    /// Panics when `traces` is empty or apps are mixed.
    pub fn from_traces(traces: &[TaskTrace]) -> Self {
        assert!(!traces.is_empty(), "empty workload");
        let app = traces[0].app;
        assert!(
            traces.iter().all(|t| t.app == app),
            "mixed applications in one workload"
        );
        WorkloadSummary {
            app,
            tasks: traces.len() as u64,
            steps: traces.iter().map(|t| t.steps.len() as u64).sum(),
            accesses: traces.iter().map(|t| t.access_count() as u64).sum(),
            bytes: traces.iter().map(TaskTrace::total_bytes).sum(),
        }
    }
}

/// Result of the CPU roofline: runtime and energy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuRun {
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Total energy in joules (package + DRAM).
    pub energy_joules: f64,
    /// Runtime expressed in DDR4-1600 DRAM cycles (800 MHz) for direct
    /// comparison with the simulators.
    pub dram_cycles: u64,
}

/// Parameters of the CPU baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuModel {
    /// Hardware threads.
    pub threads: u32,
    /// Core clock in GHz.
    pub freq_ghz: f64,
    /// DDR channels.
    pub channels: u32,
    /// Peak bandwidth per channel in GB/s.
    pub channel_gbps: f64,
    /// Effective fraction of peak bandwidth under fine-grained random
    /// access (row misses, open-page thrash).
    pub random_bw_derate: f64,
    /// Package power in watts (both sockets).
    pub package_watts: f64,
    /// DRAM subsystem power in watts.
    pub dram_watts: f64,
}

impl CpuModel {
    /// The paper's baseline: 2× Xeon E5-2680 v3, 48 threads @ 2.5 GHz,
    /// 4 DDR4-1600 channels.
    pub fn xeon_e5_2680_v3() -> Self {
        CpuModel {
            threads: 48,
            freq_ghz: 2.5,
            channels: 4,
            channel_gbps: 12.8,
            random_bw_derate: 0.35,
            package_watts: 240.0,
            dram_watts: 50.0,
        }
    }

    /// CPU cycles per kernel step, calibrated so the roofline matches the
    /// measured throughput of the paper's software baselines rather than
    /// a theoretical lower bound. A hardware "step" maps to far more
    /// software work: BWA-MEM's seeding loop does SMEM bookkeeping,
    /// re-seeding and chaining around each Occ pair; SMALT re-ranks
    /// candidates per probe; BFCounter takes locks and chases a hash map
    /// beside the filter; Shouji runs its window search serially.
    pub fn cycles_per_step(app: AppKind) -> f64 {
        match app {
            AppKind::FmSeeding => 10_000.0,
            AppKind::HashSeeding => 6_000.0,
            AppKind::KmerCounting => 2_500.0,
            AppKind::PreAlignment => 8_000.0,
        }
    }

    /// Runs the roofline for a workload.
    pub fn run(&self, w: &WorkloadSummary) -> CpuRun {
        // Memory roof: each access moves at least one 64 B line; larger
        // accesses move ceil(bytes/64) lines. Approximate the line count
        // by accesses plus the extra lines of bulk transfers.
        let bulk_lines = w.bytes / 64;
        let lines = w.accesses.max(bulk_lines) + bulk_lines / 4;
        let bw = self.channels as f64 * self.channel_gbps * 1e9 * self.random_bw_derate;
        let mem_seconds = (lines as f64 * 64.0) / bw;

        // Compute roof.
        let cps = Self::cycles_per_step(w.app);
        let compute_seconds = (w.steps as f64 * cps) / (self.threads as f64 * self.freq_ghz * 1e9);

        let seconds = mem_seconds.max(compute_seconds);
        let energy = seconds * (self.package_watts + self.dram_watts);
        CpuRun {
            seconds,
            energy_joules: energy,
            dram_cycles: (seconds * 800e6).round() as u64,
        }
    }
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel::xeon_e5_2680_v3()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beacon_genomics::trace::{Access, Region, Step};

    fn fm_workload(tasks: u64, steps_per_task: u64) -> WorkloadSummary {
        WorkloadSummary {
            app: AppKind::FmSeeding,
            tasks,
            steps: tasks * steps_per_task,
            accesses: tasks * steps_per_task * 2,
            bytes: tasks * steps_per_task * 64,
        }
    }

    #[test]
    fn runtime_scales_with_workload() {
        let cpu = CpuModel::default();
        let small = cpu.run(&fm_workload(1000, 100));
        let large = cpu.run(&fm_workload(10_000, 100));
        assert!((large.seconds / small.seconds - 10.0).abs() < 0.01);
    }

    #[test]
    fn fm_seeding_is_software_bound() {
        // The calibrated software cost dominates the raw bandwidth roof
        // (the software baselines never reach streaming bandwidth).
        let cpu = CpuModel::default();
        let w = fm_workload(1000, 100);
        let compute =
            w.steps as f64 * CpuModel::cycles_per_step(AppKind::FmSeeding) / (48.0 * 2.5e9);
        let run = cpu.run(&w);
        assert!((run.seconds - compute).abs() / compute < 1e-9);
    }

    #[test]
    fn energy_tracks_runtime() {
        let cpu = CpuModel::default();
        let r = cpu.run(&fm_workload(1000, 50));
        assert!((r.energy_joules - r.seconds * 290.0).abs() < 1e-9);
    }

    #[test]
    fn dram_cycles_conversion() {
        let cpu = CpuModel::default();
        let r = cpu.run(&fm_workload(100, 10));
        assert_eq!(r.dram_cycles, (r.seconds * 800e6).round() as u64);
    }

    #[test]
    fn summary_from_traces() {
        let traces = vec![
            TaskTrace::new(
                AppKind::FmSeeding,
                vec![Step::blocking(vec![
                    Access::read(Region::FmIndex, 0, 32),
                    Access::read(Region::FmIndex, 64, 32),
                ])],
            );
            3
        ];
        let w = WorkloadSummary::from_traces(&traces);
        assert_eq!(w.tasks, 3);
        assert_eq!(w.steps, 3);
        assert_eq!(w.accesses, 6);
        assert_eq!(w.bytes, 192);
    }

    #[test]
    #[should_panic(expected = "mixed applications")]
    fn mixed_apps_rejected() {
        let traces = vec![
            TaskTrace::new(AppKind::FmSeeding, vec![Step::blocking(vec![])]),
            TaskTrace::new(AppKind::KmerCounting, vec![Step::blocking(vec![])]),
        ];
        let _ = WorkloadSummary::from_traces(&traces);
    }
}
