//! The Address Translator: logical kernel accesses → physical locations.
//!
//! Kernels address flat per-region byte spaces ([`Region`]). The memory
//! management framework decides a [`Placement`] per region: which nodes
//! hold it (striped at a chosen granularity), where each shard starts in
//! the DIMM's local address space, and which within-DIMM interleave
//! applies. A [`RegionMap`] bundles the placements and performs the
//! translation, splitting accesses at stripe and interleave boundaries
//! exactly as the hardware translator would.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use beacon_cxl::message::NodeId;
use beacon_dram::address::{DramCoord, Interleave};
use beacon_dram::params::DimmGeometry;
use beacon_genomics::trace::{Access, Region};
use beacon_sim::snap::{SnapError, SnapReader, SnapWriter};

/// One physical piece of a translated access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhysSegment {
    /// Node whose DIMM serves this piece.
    pub node: NodeId,
    /// Burst-aligned coordinate inside that DIMM.
    pub coord: DramCoord,
    /// Bytes of this piece.
    pub bytes: u32,
}

/// Where one region lives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Nodes holding the region, striped round-robin.
    pub homes: Vec<NodeId>,
    /// Striping granularity across homes, in bytes.
    pub stripe_bytes: u64,
    /// Byte offset of this region's shard inside each home DIMM.
    pub base_offset: u64,
    /// Row shift applied after decode. Because `row` is the slowest
    /// dimension of every interleave, giving each region on a DIMM a
    /// disjoint row range guarantees physically disjoint placements even
    /// when their interleaves differ.
    pub row_offset: u64,
    /// Row-sparsity window: each interleave block lands on a
    /// hash-derived row within a window this many rows wide. `1` = dense.
    ///
    /// Scaled-down datasets would otherwise pack a whole region into one
    /// DRAM row per bank, making every random access a row hit; at full
    /// size the same structure spans thousands of rows and random
    /// accesses are row misses. Spreading blocks across a row window
    /// restores the realistic row-buffer behaviour.
    pub sparse_window: u64,
    /// Within-DIMM interleave of the shard.
    pub interleave: Interleave,
}

impl Placement {
    /// A region living wholly on one node.
    pub fn single(node: NodeId, base_offset: u64, interleave: Interleave) -> Self {
        Placement {
            homes: vec![node],
            stripe_bytes: u64::MAX,
            base_offset,
            row_offset: 0,
            sparse_window: 1,
            interleave,
        }
    }

    /// A region striped across several nodes.
    ///
    /// # Panics
    /// Panics when `homes` is empty or `stripe_bytes` is zero.
    pub fn striped(
        homes: Vec<NodeId>,
        stripe_bytes: u64,
        base_offset: u64,
        interleave: Interleave,
    ) -> Self {
        assert!(!homes.is_empty(), "placement needs at least one home");
        assert!(stripe_bytes > 0, "stripe must be positive");
        Placement {
            homes,
            stripe_bytes,
            base_offset,
            row_offset: 0,
            sparse_window: 1,
            interleave,
        }
    }

    /// Shifts the decoded rows by `rows` (region isolation).
    pub fn with_row_offset(mut self, rows: u64) -> Self {
        self.row_offset = rows;
        self
    }

    /// Spreads interleave blocks across a `window`-row range (see
    /// [`Placement::sparse_window`]).
    ///
    /// # Panics
    /// Panics when `window` is zero.
    pub fn with_sparse_rows(mut self, window: u64) -> Self {
        assert!(window > 0, "sparse window must be positive");
        self.sparse_window = window;
        self
    }

    /// `(home, local shard byte offset)` of a region byte offset.
    fn locate(&self, offset: u64) -> (NodeId, u64) {
        if self.homes.len() == 1 || self.stripe_bytes == u64::MAX {
            return (self.homes[0], offset);
        }
        let stripe = offset / self.stripe_bytes;
        let home = (stripe % self.homes.len() as u64) as usize;
        let local_stripe = stripe / self.homes.len() as u64;
        let within = offset % self.stripe_bytes;
        (self.homes[home], local_stripe * self.stripe_bytes + within)
    }
}

/// The translator: placements for every region a workload touches.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegionMap {
    geometry: DimmGeometry,
    placements: BTreeMap<Region, Placement>,
}

impl RegionMap {
    /// Creates an empty map over DIMMs of the given geometry.
    pub fn new(geometry: DimmGeometry) -> Self {
        RegionMap {
            geometry,
            placements: BTreeMap::new(),
        }
    }

    /// Registers (or replaces) the placement of `region`.
    pub fn place(&mut self, region: Region, placement: Placement) -> &mut Self {
        self.placements.insert(region, placement);
        self
    }

    /// The placement of `region`, if registered.
    pub fn placement(&self, region: Region) -> Option<&Placement> {
        self.placements.get(&region)
    }

    /// The DIMM geometry translations target.
    pub fn geometry(&self) -> &DimmGeometry {
        &self.geometry
    }

    /// RAS re-map: replaces every occurrence of `dead` in this map's
    /// placements with nodes from `survivors` (round-robin). Returns the
    /// number of placements changed. Physical coordinates are kept — the
    /// model charges the data migration separately and survivors simply
    /// absorb the dead DIMM's shard of each region.
    ///
    /// # Panics
    /// Panics when `survivors` is empty.
    pub fn remap_node(&mut self, dead: NodeId, survivors: &[NodeId]) -> u64 {
        assert!(!survivors.is_empty(), "no surviving homes to re-map onto");
        let mut changed = 0;
        for p in self.placements.values_mut() {
            let mut replaced = 0usize;
            for h in &mut p.homes {
                if *h == dead {
                    *h = survivors[replaced % survivors.len()];
                    replaced += 1;
                }
            }
            if replaced > 0 {
                changed += 1;
            }
        }
        changed
    }

    /// Serialises this map for a checkpoint (see [`RegionMap::from_snap`]).
    pub fn snap_into(&self, w: &mut SnapWriter) {
        beacon_dram::snap::put_geometry(w, &self.geometry);
        w.usize(self.placements.len());
        for (region, p) in &self.placements {
            beacon_genomics::snap::put_region(w, *region);
            w.usize(p.homes.len());
            for home in &p.homes {
                beacon_cxl::snap::put_node(w, *home);
            }
            w.u64(p.stripe_bytes);
            w.u64(p.base_offset);
            w.u64(p.row_offset);
            w.u64(p.sparse_window);
            beacon_dram::snap::put_interleave(w, &p.interleave);
        }
    }

    /// Rebuilds a map serialised by [`RegionMap::snap_into`].
    ///
    /// # Errors
    /// [`SnapError::Corrupt`] on malformed placements; any decode error
    /// from the constituent fields.
    pub fn from_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let geometry = beacon_dram::snap::get_geometry(r)?;
        let n = r.seq_len()?;
        let mut placements = BTreeMap::new();
        for _ in 0..n {
            let region = beacon_genomics::snap::get_region(r)?;
            let h = r.seq_len()?;
            if h == 0 {
                return Err(SnapError::Corrupt(format!(
                    "placement of {region:?} has no homes"
                )));
            }
            let mut homes = Vec::with_capacity(h);
            for _ in 0..h {
                homes.push(beacon_cxl::snap::get_node(r)?);
            }
            let stripe_bytes = r.u64()?;
            let base_offset = r.u64()?;
            let row_offset = r.u64()?;
            let sparse_window = r.u64()?;
            let interleave = beacon_dram::snap::get_interleave(r)?;
            placements.insert(
                region,
                Placement {
                    homes,
                    stripe_bytes,
                    base_offset,
                    row_offset,
                    sparse_window,
                    interleave,
                },
            );
        }
        Ok(RegionMap {
            geometry,
            placements,
        })
    }

    /// Translates one logical access into physical segments, splitting at
    /// stripe and interleave boundaries.
    ///
    /// # Panics
    /// Panics when the region has no placement — the memory management
    /// framework must place every region before execution starts.
    pub fn translate(&self, access: &Access) -> Vec<PhysSegment> {
        let placement = self
            .placements
            .get(&access.region)
            .unwrap_or_else(|| panic!("region {:?} has no placement", access.region));
        let granule = placement
            .interleave
            .contiguous_granule(&self.geometry)
            .min(placement.stripe_bytes);

        let mut out = Vec::new();
        let mut offset = access.offset;
        let mut remaining = access.bytes as u64;
        while remaining > 0 {
            let room = granule - (offset % granule);
            let take = room.min(remaining);
            let (node, local) = placement.locate(offset);
            let mut coord = placement
                .interleave
                .decode(&self.geometry, placement.base_offset + local);
            if placement.sparse_window > 1 {
                // Blocks sharing a decoded row scatter across the window;
                // distinct decoded rows get distinct windows, so the
                // mapping stays collision-free.
                let block = (placement.base_offset + local) / granule.max(1);
                let scatter = block.wrapping_mul(0x9E37_79B9) % placement.sparse_window;
                coord.row = coord.row * placement.sparse_window + scatter;
            }
            coord.row = (coord.row + placement.row_offset) % self.geometry.rows;
            out.push(PhysSegment {
                node,
                coord,
                bytes: take as u32,
            });
            offset += take;
            remaining -= take;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beacon_genomics::trace::AccessKind;

    fn geometry() -> DimmGeometry {
        DimmGeometry::ddr4_8gb_x4()
    }

    fn access(region: Region, offset: u64, bytes: u32) -> Access {
        Access {
            region,
            offset,
            bytes,
            kind: AccessKind::Read,
        }
    }

    #[test]
    fn single_home_small_access_is_one_segment() {
        let mut map = RegionMap::new(geometry());
        map.place(
            Region::FmIndex,
            Placement::single(
                NodeId::dimm(0, 0),
                0,
                Interleave::ChipLevel {
                    block_bytes: 32,
                    groups: 16,
                },
            ),
        );
        let segs = map.translate(&access(Region::FmIndex, 96, 32));
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].node, NodeId::dimm(0, 0));
        assert_eq!(segs[0].bytes, 32);
        // Third 32 B block rotates to group 3.
        assert_eq!(segs[0].coord.group, 3);
    }

    #[test]
    fn striping_rotates_homes() {
        let homes = vec![NodeId::dimm(0, 0), NodeId::dimm(0, 1)];
        let mut map = RegionMap::new(geometry());
        map.place(
            Region::Bloom,
            Placement::striped(
                homes.clone(),
                4096,
                0,
                Interleave::RankLevel { line_bytes: 64 },
            ),
        );
        let a = map.translate(&access(Region::Bloom, 0, 1));
        let b = map.translate(&access(Region::Bloom, 4096, 1));
        let c = map.translate(&access(Region::Bloom, 8192, 1));
        assert_eq!(a[0].node, homes[0]);
        assert_eq!(b[0].node, homes[1]);
        assert_eq!(c[0].node, homes[0]);
        // Stripe 2 is home 0's second local stripe: same decode as local
        // offset 4096.
        assert_eq!(
            c[0].coord,
            Interleave::RankLevel { line_bytes: 64 }.decode(&geometry(), 4096)
        );
    }

    #[test]
    fn access_splits_at_interleave_granule() {
        let mut map = RegionMap::new(geometry());
        map.place(
            Region::CandidateLists,
            Placement::single(
                NodeId::dimm(0, 0),
                0,
                Interleave::RankLevel { line_bytes: 64 },
            ),
        );
        // 256 B starting at 32: splits 32 + 64 + 64 + 64 + 32.
        let segs = map.translate(&access(Region::CandidateLists, 32, 256));
        assert_eq!(segs.len(), 5);
        let total: u32 = segs.iter().map(|s| s.bytes).sum();
        assert_eq!(total, 256);
        assert_eq!(segs[0].bytes, 32);
        assert_eq!(segs[1].bytes, 64);
    }

    #[test]
    fn row_major_keeps_long_reads_in_one_row() {
        let mut map = RegionMap::new(geometry());
        map.place(
            Region::CandidateLists,
            Placement::single(NodeId::dimm(0, 0), 0, Interleave::RowMajor { groups: 2 }),
        );
        // 1 KiB inside a 4 KiB row: single segment.
        let segs = map.translate(&access(Region::CandidateLists, 0, 1024));
        assert_eq!(segs.len(), 1);
    }

    #[test]
    fn base_offset_shifts_decode() {
        let mut map = RegionMap::new(geometry());
        let il = Interleave::RankLevel { line_bytes: 64 };
        map.place(
            Region::HashTable,
            Placement::single(NodeId::dimm(0, 0), 1 << 20, il),
        );
        let segs = map.translate(&access(Region::HashTable, 0, 8));
        assert_eq!(segs[0].coord, il.decode(&geometry(), 1 << 20));
    }

    #[test]
    #[should_panic(expected = "no placement")]
    fn unplaced_region_panics() {
        let map = RegionMap::new(geometry());
        let _ = map.translate(&access(Region::Reference, 0, 64));
    }

    #[test]
    fn remap_node_rehomes_only_the_dead_node() {
        let dead = NodeId::dimm(0, 1);
        let survivor = NodeId::dimm(0, 2);
        let mut map = RegionMap::new(geometry());
        map.place(
            Region::Bloom,
            Placement::striped(
                vec![NodeId::dimm(0, 0), dead],
                4096,
                0,
                Interleave::RankLevel { line_bytes: 64 },
            ),
        );
        map.place(
            Region::Reference,
            Placement::single(
                NodeId::dimm(0, 0),
                0,
                Interleave::RankLevel { line_bytes: 64 },
            ),
        );
        assert_eq!(map.remap_node(dead, &[survivor]), 1);
        let p = map.placement(Region::Bloom).unwrap();
        assert_eq!(p.homes, vec![NodeId::dimm(0, 0), survivor]);
        // Untouched placement stays put; second remap is a no-op.
        assert_eq!(
            map.placement(Region::Reference).unwrap().homes,
            vec![NodeId::dimm(0, 0)]
        );
        assert_eq!(map.remap_node(dead, &[survivor]), 0);
        // Translations now land on the survivor.
        let segs = map.translate(&access(Region::Bloom, 4096, 1));
        assert_eq!(segs[0].node, survivor);
    }

    #[test]
    fn stripe_boundary_splits_nodes() {
        let homes = vec![NodeId::dimm(0, 0), NodeId::dimm(0, 1)];
        let mut map = RegionMap::new(geometry());
        map.place(
            Region::Reference,
            Placement::striped(
                homes.clone(),
                128,
                0,
                Interleave::RankLevel { line_bytes: 64 },
            ),
        );
        // 128 B starting at 64 crosses the stripe boundary at 128.
        let segs = map.translate(&access(Region::Reference, 64, 128));
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].node, homes[0]);
        assert_eq!(segs[1].node, homes[1]);
    }
}
