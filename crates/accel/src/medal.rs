//! MEDAL: the DDR-DIMM based NDP baseline (MICRO'19).
//!
//! MEDAL places NDP logic on each DDR-DIMM and gives the DIMM per-chip
//! chip-selects for fine-grained access. Its Achilles heel — the reason
//! BEACON exists — is inter-DIMM communication: remote accesses traverse
//! the shared DDR memory channel through the host, whose bandwidth is an
//! order of magnitude below the aggregate intra-DIMM bandwidth.
//!
//! The model: `channels × dimms_per_channel` DIMM modules, each a
//! [`TaskEngine`] + [`DimmServer`] pair; per-channel uplink/downlink
//! [`Link`]s at DDR4 channel bandwidth shared by the channel's DIMMs; a
//! host stage that forwards between channels with a fixed latency. The
//! NEST baseline ([`crate::nest`]) reuses this system with its k-mer
//! workload orchestration.

use std::collections::VecDeque;

use beacon_sim::component::Tick;
use beacon_sim::cycle::{Cycle, Duration};
use beacon_sim::engine::Engine;
use beacon_sim::stats::Stats;
use serde::{Deserialize, Serialize};

use beacon_cxl::bundle::Bundle;
use beacon_cxl::link::Link;
use beacon_cxl::message::{Message, MsgKind, NodeId};
use beacon_cxl::packer::DataPacker;
use beacon_cxl::params::LinkParams;
use beacon_dram::address::DramCoord;
use beacon_dram::module::{AccessMode, DimmConfig};
use beacon_dram::params::DimmGeometry;
use beacon_genomics::trace::{AccessKind, Region, TaskTrace};

use crate::pending::PendingTable;
use crate::result::RunResult;
use crate::server::{DimmServer, ServiceOp};
use crate::task::{IssuedAccess, TaskEngine};
use crate::translate::{Placement, RegionMap};

/// Marks a service id as serving a remote request (vs completing a local
/// pending access).
const SERVE_BIT: u64 = 1 << 60;

/// Size/locality description of one memory region of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionSpec {
    /// The region.
    pub region: Region,
    /// Its size in bytes.
    pub bytes: u64,
    /// Whether it has spatial locality (row-major placement).
    pub spatial: bool,
}

impl RegionSpec {
    /// A fine-grained random-access region.
    pub fn random(region: Region, bytes: u64) -> Self {
        RegionSpec {
            region,
            bytes,
            spatial: false,
        }
    }

    /// A spatially-local region.
    pub fn spatial(region: Region, bytes: u64) -> Self {
        RegionSpec {
            region,
            bytes,
            spatial: true,
        }
    }
}

/// Configuration of the MEDAL/NEST hardware (paper Table I).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MedalConfig {
    /// DDR channels.
    pub channels: u32,
    /// DIMMs per channel.
    pub dimms_per_channel: u32,
    /// PEs per DIMM.
    pub pes_per_dimm: usize,
    /// PE compute latency per step in cycles.
    pub pe_latency: u32,
    /// Channel link parameters (overridden by [`MedalConfig::idealized`]).
    pub channel_link: LinkParams,
    /// Host forwarding latency between channels, in cycles.
    pub host_latency: u64,
    /// Whether DRAM refresh is modelled.
    pub refresh_enabled: bool,
    /// Striping granularity of shared regions across DIMMs, in bytes.
    pub stripe_bytes: u64,
    /// DRAM controller queue depth per DIMM.
    pub dimm_queue_depth: usize,
    /// DIMM geometry (simulation-scaled by default).
    pub geometry: DimmGeometry,
}

impl MedalConfig {
    /// The paper's configuration: 512 PEs over 2 channels × 2 DIMMs with
    /// the given per-step PE latency.
    pub fn paper(pe_latency: u32) -> Self {
        MedalConfig {
            channels: 2,
            dimms_per_channel: 2,
            pes_per_dimm: 128,
            pe_latency,
            channel_link: LinkParams::ddr4_channel(),
            host_latency: 50,
            refresh_enabled: true,
            stripe_bytes: 1024,
            dimm_queue_depth: 192,
            geometry: DimmGeometry::sim_scaled(),
        }
    }

    /// Idealised communication variant (Fig. 3): links free, host free.
    pub fn idealized(mut self) -> Self {
        self.channel_link = LinkParams::ideal();
        self.host_latency = 0;
        self
    }

    /// Total DIMMs.
    pub fn dimm_count(&self) -> u32 {
        self.channels * self.dimms_per_channel
    }

    /// Node id of DIMM module `i` (channel index doubles as
    /// `switch_idx`).
    pub fn node(&self, i: u32) -> NodeId {
        NodeId::Dimm {
            switch_idx: i / self.dimms_per_channel,
            slot: i % self.dimms_per_channel,
        }
    }

    /// All module nodes in order.
    pub fn nodes(&self) -> Vec<NodeId> {
        (0..self.dimm_count()).map(|i| self.node(i)).collect()
    }

    /// Module index of a node.
    ///
    /// # Panics
    /// Panics for nodes that are not MEDAL DIMMs.
    pub fn module_of(&self, node: NodeId) -> usize {
        match node {
            NodeId::Dimm { switch_idx, slot } => {
                assert!(switch_idx < self.channels && slot < self.dimms_per_channel);
                (switch_idx * self.dimms_per_channel + slot) as usize
            }
            other => panic!("{other:?} is not a MEDAL DIMM"),
        }
    }

    /// Builds the region map MEDAL uses: every region striped across all
    /// DIMMs, chip-level interleave for random regions (MEDAL's
    /// fine-grained access), row-major for spatial regions.
    pub fn region_map(&self, specs: &[RegionSpec]) -> RegionMap {
        use beacon_dram::address::Interleave;

        let geometry = self.geometry;
        let homes = self.nodes();
        let n = homes.len() as u64;
        // One DRAM row index sweeps ranks × chips × banks × row bytes.
        let row_sweep = (geometry.ranks * geometry.chips_per_rank * geometry.banks) as u64
            * geometry.row_bytes_per_chip as u64;
        let mut map = RegionMap::new(geometry);
        let mut row_cursor = 0u64;
        for spec in specs {
            // Random regions scatter their blocks across a row window so
            // that fine-grained random accesses miss the row buffer, as
            // they would at full dataset size.
            let (interleave, window) = if spec.spatial {
                (
                    Interleave::RowMajor {
                        groups: geometry.chips_per_rank,
                    },
                    1,
                )
            } else {
                (
                    Interleave::ChipLevel {
                        block_bytes: 32,
                        groups: geometry.chips_per_rank,
                    },
                    64,
                )
            };
            map.place(
                spec.region,
                Placement::striped(homes.clone(), self.stripe_bytes, 0, interleave)
                    .with_row_offset(row_cursor)
                    .with_sparse_rows(window),
            );
            let per_node = (spec.bytes.div_ceil(self.stripe_bytes * n)) * self.stripe_bytes;
            row_cursor += per_node.div_ceil(row_sweep).max(1) * window;
        }
        map
    }
}

#[derive(Debug, Clone, Copy)]
struct ServeEntry {
    requester: NodeId,
    orig_tag: u64,
    kind: MsgKind,
    bytes: u32,
    in_use: bool,
}

#[derive(Debug)]
struct Module {
    node: NodeId,
    engine: TaskEngine,
    server: DimmServer,
    map: RegionMap,
    pending: PendingTable,
    serve: Vec<ServeEntry>,
    free_serve: Vec<u32>,
    /// MEDAL batches fine-grained messages before the channel transfer.
    packer: DataPacker,
    outbound: VecDeque<Bundle>,
}

impl Module {
    fn alloc_serve(&mut self, entry: ServeEntry) -> u32 {
        match self.free_serve.pop() {
            Some(i) => {
                self.serve[i as usize] = entry;
                i
            }
            None => {
                self.serve.push(entry);
                (self.serve.len() - 1) as u32
            }
        }
    }
}

/// The MEDAL system: DDR-DIMM NDP modules behind shared memory channels.
#[derive(Debug)]
pub struct Medal {
    cfg: MedalConfig,
    modules: Vec<Module>,
    /// Per channel: DIMMs → host.
    up: Vec<Link>,
    /// Per channel: host → DIMMs.
    down: Vec<Link>,
    host_stage: VecDeque<(Cycle, Bundle)>,
    finished_at: Cycle,
    /// Reused engine-issue buffer (`TaskEngine::tick_into`).
    issued_scratch: Vec<IssuedAccess>,
}

impl Medal {
    /// Builds the system. `maps` holds one [`RegionMap`] per module (use
    /// [`Medal::with_shared_map`] when all modules share one view).
    ///
    /// # Panics
    /// Panics when `maps.len()` differs from the DIMM count.
    pub fn new(cfg: MedalConfig, maps: Vec<RegionMap>) -> Self {
        assert_eq!(
            maps.len(),
            cfg.dimm_count() as usize,
            "need one region map per module"
        );
        let mut dimm_cfg = DimmConfig::paper_ndp(AccessMode::PerChip);
        dimm_cfg.geometry = cfg.geometry;
        dimm_cfg.refresh_enabled = cfg.refresh_enabled;
        dimm_cfg.queue_depth = cfg.dimm_queue_depth;

        let modules = maps
            .into_iter()
            .enumerate()
            .map(|(i, map)| Module {
                node: cfg.node(i as u32),
                engine: TaskEngine::new(cfg.pes_per_dimm, cfg.pe_latency),
                server: DimmServer::new(dimm_cfg),
                map,
                pending: PendingTable::new(),
                serve: Vec::new(),
                free_serve: Vec::new(),
                packer: DataPacker::new(8),
                outbound: VecDeque::new(),
            })
            .collect();

        Medal {
            modules,
            up: (0..cfg.channels)
                .map(|_| Link::new(cfg.channel_link))
                .collect(),
            down: (0..cfg.channels)
                .map(|_| Link::new(cfg.channel_link))
                .collect(),
            host_stage: VecDeque::new(),
            finished_at: Cycle::ZERO,
            issued_scratch: Vec::new(),
            cfg,
        }
    }

    /// Builds the system with every module sharing the same region map.
    pub fn with_shared_map(cfg: MedalConfig, map: RegionMap) -> Self {
        let maps = vec![map; cfg.dimm_count() as usize];
        Medal::new(cfg, maps)
    }

    /// The configuration.
    pub fn config(&self) -> &MedalConfig {
        &self.cfg
    }

    /// Submits one task to a specific module.
    pub fn submit_to(&mut self, module: usize, trace: TaskTrace) {
        self.modules[module].engine.submit(trace);
    }

    /// Distributes tasks round-robin over the modules (the host's task
    /// dispatch).
    pub fn submit_round_robin<I: IntoIterator<Item = TaskTrace>>(&mut self, traces: I) {
        let n = self.modules.len();
        for (i, t) in traces.into_iter().enumerate() {
            self.modules[i % n].engine.submit(t);
        }
    }

    /// Runs until the workload drains and returns the measurements.
    ///
    /// # Panics
    /// Panics when the model deadlocks (cycle limit).
    pub fn run(&mut self) -> RunResult {
        let mut engine = Engine::new();
        let outcome = engine.run(self);
        self.finished_at = outcome.finished_at();
        self.collect()
    }

    /// Assembles the measurement bundle after a run.
    pub fn collect(&self) -> RunResult {
        let mut dram = Stats::new();
        let mut comm = Stats::new();
        let mut eng = Stats::new();
        let mut pe_busy = 0;
        let mut tasks = 0;
        let mut hists = Vec::new();
        for m in &self.modules {
            dram.merge(m.server.dimm().stats());
            eng.merge(m.engine.stats());
            eng.merge(m.server.stats());
            pe_busy += m.engine.busy_pe_cycles();
            tasks += m.engine.completed();
            hists.push(m.server.chip_histogram().clone());
        }
        for l in self.up.iter().chain(&self.down) {
            comm.merge(l.stats());
        }
        for m in &self.modules {
            comm.merge(m.packer.stats());
        }
        RunResult {
            cycles: self.finished_at.as_u64(),
            tasks,
            dram,
            comm,
            engine: eng,
            pe_busy_cycles: pe_busy,
            total_chips: (self.cfg.geometry.ranks * self.cfg.geometry.chips_per_rank) as u64
                * self.modules.len() as u64,
            chip_histograms: hists,
            degraded: None,
            attribution: None,
        }
    }

    fn op_of(kind: AccessKind) -> (ServiceOp, MsgKind) {
        match kind {
            AccessKind::Read => (ServiceOp::Read, MsgKind::ReadReq),
            AccessKind::Write => (ServiceOp::Write, MsgKind::WriteReq),
            AccessKind::Rmw => (ServiceOp::Rmw, MsgKind::AtomicReq),
        }
    }

    fn drive_engines(&mut self, now: Cycle) {
        let mut issued = std::mem::take(&mut self.issued_scratch);
        for mi in 0..self.modules.len() {
            issued.clear();
            self.modules[mi].engine.tick_into(now, &mut issued);
            for &ia in &issued {
                let segments = self.modules[mi].map.translate(&ia.access);
                let pid =
                    self.modules[mi]
                        .pending
                        .alloc(ia.token, segments.len() as u32, ia.blocking);
                let (op, msg_kind) = Self::op_of(ia.access.kind);
                for seg in segments {
                    if seg.node == self.modules[mi].node {
                        self.modules[mi]
                            .server
                            .request(pid, seg.coord, seg.bytes, op);
                    } else {
                        let src = self.modules[mi].node;
                        let msg = Message {
                            src,
                            dst: seg.node,
                            kind: msg_kind,
                            payload_bytes: seg.bytes,
                            tag: pid,
                            aux: seg.coord.pack(),
                            via_host: false,
                            jny: None,
                        };
                        self.modules[mi].packer.push(msg, now);
                    }
                }
            }
        }
        self.issued_scratch = issued;
    }

    fn pump_outbound(&mut self, now: Cycle) {
        // Drain packers, then round-robin across a channel's DIMMs for
        // fairness on the shared channel.
        for m in &mut self.modules {
            m.packer.tick(now);
            while let Some(b) = m.packer.pop_ready() {
                m.outbound.push_back(b);
            }
        }
        let dpc = self.cfg.dimms_per_channel as usize;
        for c in 0..self.cfg.channels as usize {
            let start = (now.as_u64() as usize) % dpc;
            for k in 0..dpc {
                let mi = c * dpc + (start + k) % dpc;
                while let Some(bundle) = self.modules[mi].outbound.front().cloned() {
                    if !self.up[c].can_send(now) {
                        break;
                    }
                    self.up[c].try_send(bundle, now).expect("can_send checked");
                    self.modules[mi].outbound.pop_front();
                }
            }
        }
    }

    fn pump_host(&mut self, now: Cycle) {
        for c in 0..self.cfg.channels as usize {
            while let Some(bundle) = self.up[c].deliver(now) {
                let ready = now + Duration::new(self.cfg.host_latency);
                self.host_stage.push_back((ready, bundle));
            }
        }
        let mut rest = VecDeque::new();
        while let Some((ready, bundle)) = self.host_stage.pop_front() {
            if ready > now {
                rest.push_back((ready, bundle));
                continue;
            }
            let channel = bundle.messages[0].dst.switch().expect("DIMM destination") as usize;
            match self.down[channel].try_send(bundle, now) {
                Ok(()) => {}
                Err(e) => rest.push_back((ready, e.into_bundle())),
            }
        }
        self.host_stage = rest;
    }

    fn deliver_incoming(&mut self, now: Cycle) {
        for c in 0..self.cfg.channels as usize {
            while let Some(bundle) = self.down[c].deliver(now) {
                for msg in bundle.messages {
                    let mi = self.cfg.module_of(msg.dst);
                    self.handle_message(mi, msg, now);
                }
            }
        }
    }

    fn handle_message(&mut self, mi: usize, msg: Message, now: Cycle) {
        match msg.kind {
            MsgKind::ReadReq | MsgKind::WriteReq | MsgKind::AtomicReq => {
                let entry = ServeEntry {
                    requester: msg.src,
                    orig_tag: msg.tag,
                    kind: msg.kind,
                    bytes: msg.payload_bytes,
                    in_use: true,
                };
                let sid = self.modules[mi].alloc_serve(entry);
                let op = match msg.kind {
                    MsgKind::ReadReq => ServiceOp::Read,
                    MsgKind::WriteReq => ServiceOp::Write,
                    MsgKind::AtomicReq => ServiceOp::Rmw,
                    _ => unreachable!(),
                };
                let coord = DramCoord::unpack(msg.aux);
                self.modules[mi].server.request(
                    SERVE_BIT | sid as u64,
                    coord,
                    msg.payload_bytes,
                    op,
                );
            }
            MsgKind::ReadResp | MsgKind::Ack => {
                if let Some((token, _)) = self.modules[mi].pending.complete_one(msg.tag) {
                    self.modules[mi].engine.on_data(token, now);
                }
            }
            // MEDAL's baseline pool is always healthy: naks never occur.
            MsgKind::Nak | MsgKind::Control => {}
        }
    }

    fn drive_servers(&mut self, now: Cycle) {
        for mi in 0..self.modules.len() {
            self.modules[mi].server.tick(now);
            for (id, _at) in self.modules[mi].server.drain_done() {
                if id & SERVE_BIT != 0 {
                    let sidx = (id & !SERVE_BIT) as usize;
                    let entry = self.modules[mi].serve[sidx];
                    debug_assert!(entry.in_use);
                    self.modules[mi].serve[sidx].in_use = false;
                    self.modules[mi].free_serve.push(sidx as u32);
                    let resp = match entry.kind {
                        MsgKind::ReadReq => Message {
                            src: self.modules[mi].node,
                            dst: entry.requester,
                            kind: MsgKind::ReadResp,
                            payload_bytes: entry.bytes,
                            tag: entry.orig_tag,
                            aux: 0,
                            via_host: false,
                            jny: None,
                        },
                        _ => Message {
                            src: self.modules[mi].node,
                            dst: entry.requester,
                            kind: MsgKind::Ack,
                            payload_bytes: 0,
                            tag: entry.orig_tag,
                            aux: 0,
                            via_host: false,
                            jny: None,
                        },
                    };
                    self.modules[mi].packer.push(resp, now);
                } else if let Some((token, _)) = self.modules[mi].pending.complete_one(id) {
                    self.modules[mi].engine.on_data(token, now);
                }
            }
        }
    }
}

impl Tick for Medal {
    fn tick(&mut self, now: Cycle) {
        self.deliver_incoming(now);
        self.drive_engines(now);
        self.drive_servers(now);
        self.pump_outbound(now);
        self.pump_host(now);
    }

    fn is_idle(&self) -> bool {
        self.host_stage.is_empty()
            && self.up.iter().all(Link::is_idle)
            && self.down.iter().all(Link::is_idle)
            && self.modules.iter().all(|m| {
                m.engine.all_done()
                    && m.server.is_idle()
                    && m.outbound.is_empty()
                    && m.packer.is_idle()
                    && m.pending.is_empty()
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beacon_genomics::genome::{Genome, GenomeId};
    use beacon_genomics::prelude::FmIndex;
    use beacon_genomics::reads::ReadSampler;

    fn small_fm_workload() -> (Vec<TaskTrace>, u64) {
        let g = Genome::synthetic(GenomeId::Pt, 3000, 5);
        let idx = FmIndex::build(g.sequence());
        let mut sampler = ReadSampler::new(&g, 24, 0.0, 9);
        let traces: Vec<TaskTrace> = (0..24)
            .map(|_| idx.trace_search(sampler.next_read().bases()))
            .collect();
        (traces, idx.index_bytes())
    }

    fn build(cfg: MedalConfig, index_bytes: u64) -> Medal {
        let map = cfg.region_map(&[RegionSpec::random(Region::FmIndex, index_bytes)]);
        Medal::with_shared_map(cfg, map)
    }

    #[test]
    fn workload_drains_and_counts_tasks() {
        let (traces, bytes) = small_fm_workload();
        let n = traces.len();
        let mut cfg = MedalConfig::paper(16);
        cfg.pes_per_dimm = 8;
        cfg.refresh_enabled = false;
        let mut medal = build(cfg, bytes);
        medal.submit_round_robin(traces);
        let result = medal.run();
        assert_eq!(result.tasks, n);
        assert!(result.cycles > 0);
        assert!(result.dram.get("dram.cmd.read") > 0);
    }

    #[test]
    fn remote_accesses_generate_channel_traffic() {
        let (traces, bytes) = small_fm_workload();
        let mut cfg = MedalConfig::paper(16);
        cfg.pes_per_dimm = 8;
        cfg.refresh_enabled = false;
        let mut medal = build(cfg, bytes);
        medal.submit_round_robin(traces);
        let result = medal.run();
        // Index striped over 4 DIMMs: ~3/4 of accesses are remote.
        assert!(result.comm.get("cxl.flits") > 0);
    }

    #[test]
    fn idealized_communication_is_faster() {
        let (traces, bytes) = small_fm_workload();
        let mut cfg = MedalConfig::paper(16);
        cfg.pes_per_dimm = 8;
        cfg.refresh_enabled = false;

        let mut real = build(cfg, bytes);
        real.submit_round_robin(traces.clone());
        let t_real = real.run().cycles;

        let mut ideal = build(cfg.idealized(), bytes);
        ideal.submit_round_robin(traces);
        let t_ideal = ideal.run().cycles;

        assert!(
            t_ideal < t_real,
            "ideal {t_ideal} should beat real {t_real}"
        );
    }

    #[test]
    fn chip_histogram_records_fine_grained_access() {
        let (traces, bytes) = small_fm_workload();
        let mut cfg = MedalConfig::paper(16);
        cfg.pes_per_dimm = 8;
        cfg.refresh_enabled = false;
        let mut medal = build(cfg, bytes);
        medal.submit_round_robin(traces);
        let result = medal.run();
        let hist = result.merged_chip_histogram().unwrap();
        assert!(hist.total() > 0);
    }

    #[test]
    fn more_pes_help_compute_bound_workloads() {
        // Under idealised communication and a long PE latency the system
        // is compute-bound, so PE count must scale throughput.
        let (traces, bytes) = small_fm_workload();
        let mut few = MedalConfig::paper(200).idealized();
        few.pes_per_dimm = 1;
        few.refresh_enabled = false;
        let mut many = few;
        many.pes_per_dimm = 8;

        let mut a = build(few, bytes);
        a.submit_round_robin(traces.clone());
        let t_few = a.run().cycles;

        let mut b = build(many, bytes);
        b.submit_round_robin(traces);
        let t_many = b.run().cycles;
        assert!(
            t_many * 2 < t_few,
            "8 PEs ({t_many}) not ≥2x faster than 1 PE ({t_few})"
        );
    }
}
