//! Offline stand-in for `criterion`: benches compile and each closure
//! runs exactly once (like criterion's own `cargo test` mode). No
//! statistics are collected.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Mirror of `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single benchmark outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) -> &mut Self {
        run_once(&format!("{id}"), &mut f);
        self
    }
}

/// Mirror of `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Ignored; accepted for API compatibility.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ignored; accepted for API compatibility.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Ignored; accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs `f` once and reports the wall-clock time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) -> &mut Self {
        run_once(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_once<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let t = Instant::now();
    let mut b = Bencher { _private: () };
    f(&mut b);
    eprintln!("bench {label}: one pass in {:?}", t.elapsed());
}

/// Mirror of `criterion::Bencher`; `iter` runs its closure once.
pub struct Bencher {
    _private: (),
}

impl Bencher {
    /// Runs `f` once.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let _ = black_box(f());
    }
}

/// Opaque value barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Mirror of `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirror of `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test`/`cargo bench` pass harness flags; ignore them.
            $( $group(); )+
        }
    };
}
