//! Offline stand-in for `proptest`, covering the API subset this
//! workspace uses: the `proptest!` macro with an optional
//! `#![proptest_config(..)]` header, `prop_assert*!`, range strategies,
//! `prop::collection::{vec, hash_set}`, `prop::sample::select`, `Just`
//! and `.prop_map`. Cases are sampled from a deterministic SplitMix64
//! stream — no shrinking, no persistence.

pub mod test_runner {
    //! Configuration and the deterministic case generator.

    /// Mirror of `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic SplitMix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream; `proptest!` derives the seed from the test name.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x6A09_E667_F3BC_C909,
            }
        }

        /// Next raw 64-bit sample.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` of zero yields zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                0
            } else {
                self.next_u64() % bound
            }
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and basic combinators.

    use crate::test_runner::TestRng;

    /// Generates values of an associated type from the test RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy always yielding a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let lo = self.start as i128;
                    let width = (self.end as i128 - lo) as u128;
                    (lo + ((rng.next_u64() as u128) % width) as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let lo = *self.start() as i128;
                    let hi = *self.end() as i128;
                    assert!(lo <= hi, "empty strategy range");
                    let width = (hi - lo) as u128 + 1;
                    (lo + ((rng.next_u64() as u128) % width) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Inclusive-exclusive size bound accepted by collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn draw(&self, rng: &mut TestRng) -> usize {
            let width = (self.hi - self.lo).max(1) as u64;
            self.lo + rng.below(width) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy for `Vec`s of `element` with a size in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `HashSet`s of `element` with a size in `size`.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size: size.into() }
    }

    /// See [`hash_set`].
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = self.size.draw(rng);
            let mut out = HashSet::with_capacity(n);
            let mut attempts = 0usize;
            while out.len() < n && attempts < n.saturating_mul(64) + 64 {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod sample {
    //! Sampling from explicit value lists.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy drawing uniformly from `values`.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select requires at least one value");
        Select { values }
    }

    /// See [`select`].
    pub struct Select<T> {
        values: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.values.len() as u64) as usize;
            self.values[i].clone()
        }
    }
}

/// Mirror of `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Skips the current case when the assumption fails. Only valid
/// directly inside a `proptest!` body (expands to `continue`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Asserts a condition inside a property, with an optional message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Declares property tests. Each `fn name(pat in strategy, ..) { .. }`
/// becomes a `#[test]` running the body for every sampled case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let mut __seed = 0xB5AD_4ECE_DA1C_E2A9u64;
            for b in stringify!($name).bytes() {
                __seed = __seed.rotate_left(7) ^ (b as u64);
            }
            let mut __rng = $crate::test_runner::TestRng::new(__seed);
            for __case in 0..__cfg.cases {
                let _ = __case;
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}
