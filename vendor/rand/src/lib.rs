//! Offline stand-in for the `rand` crate exposing the API subset this
//! workspace uses. NOT the real StdRng stream — sequences differ from
//! upstream `rand`, but determinism and ranges hold.

use std::fmt;

/// Error type mirroring `rand::Error`.
pub struct Error;

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rand::Error")
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rand::Error")
    }
}

impl std::error::Error for Error {}

/// Core RNG interface.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// Seedable RNG interface.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;
    fn from_seed(seed: Self::Seed) -> Self;
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (i, b) in chunk.iter_mut().enumerate() {
                *b = (z >> (8 * i)) as u8;
            }
        }
        Self::from_seed(seed)
    }
}

/// The `Standard` distribution.
pub struct Standard;

/// Distribution interface.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u8> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Range sampling interface used by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_uint_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let lo = self.start as u128;
                let width = self.end as u128 - lo;
                (lo + (rng.next_u64() as u128) % width) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let lo = *self.start() as u128;
                let hi = *self.end() as u128;
                assert!(lo <= hi, "cannot sample empty range");
                (lo + (rng.next_u64() as u128) % (hi - lo + 1)) as $t
            }
        }
    )*};
}

impl_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let lo = self.start as i128;
                let width = (self.end as i128 - lo) as u128;
                (lo + ((rng.next_u64() as u128) % width) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize);

/// Convenience extension over [`RngCore`].
pub trait Rng: RngCore + Sized {
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        let unit: f64 = self.gen();
        unit < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// SplitMix64-based stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut state = 0xDEAD_BEEF_CAFE_F00Du64;
            for chunk in seed.chunks(8) {
                let mut word = 0u64;
                for (i, &b) in chunk.iter().enumerate() {
                    word |= (b as u64) << (8 * i);
                }
                state = state.rotate_left(17) ^ word.wrapping_mul(0x2545_F491_4F6C_DD1D);
            }
            StdRng { state }
        }
    }

    impl StdRng {
        /// Raw 64-bit generator state. Together with
        /// [`StdRng::from_state`] this allows a generator to be
        /// checkpointed mid-stream and resumed bit-identically — the
        /// upstream `rand` crate offers no such accessor, but the
        /// stand-in's whole state is one word.
        pub fn state(&self) -> u64 {
            self.state
        }

        /// Rebuilds a generator from a state captured by
        /// [`StdRng::state`]; the resumed stream continues exactly
        /// where the captured one left off.
        pub fn from_state(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64();
                for (i, b) in chunk.iter_mut().enumerate() {
                    *b = (word >> (8 * i)) as u8;
                }
            }
        }
    }
}
