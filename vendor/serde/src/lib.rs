//! Offline stand-in for `serde`: the traits exist so `#[derive(Serialize,
//! Deserialize)]` attributes parse, but the derives expand to nothing.

/// Marker mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
