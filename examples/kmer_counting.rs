//! k-mer counting end to end: functional correctness (counting Bloom
//! filter vs exact counts) plus the accelerator comparison — NEST's
//! multi-pass strategy vs BEACON-S single-pass vs BEACON-D.
//!
//! ```text
//! cargo run -p beacon-core --example kmer_counting --release
//! ```

use beacon_core::config::{BeaconVariant, Optimizations};
use beacon_core::experiments::common::{
    kmer_workload, run_beacon, run_cpu, run_nest, WorkloadScale,
};
use beacon_genomics::kmer::{canonical_kmers, KmerCounter};
use beacon_genomics::prelude::*;

fn main() {
    // ---- functional layer: count k-mers and validate the filter -------
    let genome = Genome::synthetic(GenomeId::Human, 30_000, 42);
    let mut counter = KmerCounter::new(28, 1 << 18, 3, 7);
    let mut sampler = ReadSampler::new(&genome, 100, 0.01, 9);
    let reads = sampler.take_reads(256);
    counter.count_reads(&reads);

    let mut overcounts = 0usize;
    let mut checked = 0usize;
    for read in reads.iter().take(32) {
        for km in canonical_kmers(read.bases(), 28) {
            let exact = counter.exact_count(km);
            let est = counter.estimate(km);
            assert!(est >= exact.min(255), "CBF must upper-bound the true count");
            if est > exact {
                overcounts += 1;
            }
            checked += 1;
        }
    }
    println!(
        "counted {} reads: {} k-mers occur >= 2 times; CBF overcounted {}/{} probes ({:.2}%)",
        reads.len(),
        counter.distinct_at_least(2),
        overcounts,
        checked,
        100.0 * overcounts as f64 / checked as f64
    );

    // ---- accelerator layer: NEST multi-pass vs BEACON ------------------
    let scale = WorkloadScale {
        pt_genome_len: 100_000,
        reads: 1,
        read_len: 100,
        error_rate: 0.01,
        kmer_k: 28,
        kmer_reads: 512,
        cbf_bytes: 512 * 1024,
        seed: 42,
    };
    let pes = 64;
    let w = kmer_workload(&scale);
    let cpu = run_cpu(&w);
    let nest = run_nest(&w, scale.cbf_bytes, false, pes);
    let d = run_beacon(
        BeaconVariant::D,
        Optimizations::full(BeaconVariant::D, w.app),
        &w,
        pes,
    );
    let s_single = run_beacon(
        BeaconVariant::S,
        Optimizations::full(BeaconVariant::S, w.app),
        &w,
        pes,
    );
    let mut multi = Optimizations::full(BeaconVariant::S, w.app);
    multi.single_pass_kmer = false;
    let s_multi = run_beacon(BeaconVariant::S, multi, &w, pes);

    println!(
        "\n{} reads of k-mer counting (k=28, CBF {} KiB):",
        scale.kmer_reads,
        scale.cbf_bytes / 1024
    );
    println!(
        "  CPU (BFCounter roofline):    {:>9} cycles",
        cpu.dram_cycles
    );
    println!("  NEST (multi-pass):           {:>9} cycles", nest.cycles);
    println!(
        "  BEACON-S (multi-pass):       {:>9} cycles",
        s_multi.cycles
    );
    println!(
        "  BEACON-S (single-pass):      {:>9} cycles",
        s_single.cycles
    );
    println!("  BEACON-D:                    {:>9} cycles", d.cycles);
    println!(
        "  single-pass gain on S: {:.2}x   BEACON-S vs NEST: {:.2}x   atomic RMWs: {}",
        s_multi.cycles as f64 / s_single.cycles as f64,
        nest.cycles as f64 / s_single.cycles as f64,
        s_single.engine.get("logic.atomics"),
    );
}
