//! Extension beyond genomics (paper §V, "Extension to Other
//! Applications"): BEACON as an accelerator for in-memory database index
//! traversals — the hash-probe workload of Kocberber et al.'s "Meet the
//! Walkers", which the paper cites as a natural fit.
//!
//! A hash-join probe is structurally the hash-seeding kernel: a
//! fine-grained random bucket-header read followed by a spatially-local
//! walk of the bucket's tuple list. We build the traces directly from
//! the trace vocabulary (`Region`/`Access`/`Step`) — no genomics types
//! involved — and run them on both BEACON designs.
//!
//! ```text
//! cargo run -p beacon-core --example extension_database --release
//! ```

use beacon_core::config::{BeaconVariant, Optimizations};
use beacon_core::experiments::common::{run_beacon, run_cpu, AppWorkload};
use beacon_core::mmf::LayoutSpec;
use beacon_genomics::trace::{Access, AppKind, Region, Step, TaskTrace};
use beacon_sim::rng::SimRng;

/// One probe batch: walk `probes` hash buckets, each with a header read
/// and a tuple-list scan whose length follows the join's skew.
fn probe_trace(
    rng: &mut SimRng,
    table_bytes: u64,
    tuple_region_bytes: u64,
    probes: usize,
) -> TaskTrace {
    let mut steps = Vec::with_capacity(probes * 2);
    for _ in 0..probes {
        // Bucket header: 16 B at a hash-random offset.
        let bucket = rng.below(table_bytes / 16) * 16;
        steps.push(Step::blocking(vec![Access::read(
            Region::HashTable,
            bucket,
            16,
        )]));
        // Tuple list: 1-8 matching tuples of 32 B, stored contiguously.
        let tuples = rng.geometric_between(1, 8, 0.5);
        let list = rng.below(tuple_region_bytes / 256) * 256;
        steps.push(Step::blocking(vec![Access::read(
            Region::CandidateLists,
            list,
            (tuples * 32) as u32,
        )]));
    }
    // The probe engine is the hash-index PE (10-cycle hash + compare).
    TaskTrace::new(AppKind::HashSeeding, steps)
}

fn main() {
    let table_bytes = 4 << 20; // 4 MiB hash table
    let tuple_bytes = 16 << 20; // 16 MiB tuple storage
    let mut rng = SimRng::from_seed(2026);

    let traces: Vec<TaskTrace> = (0..2048)
        .map(|_| probe_trace(&mut rng, table_bytes, tuple_bytes, 8))
        .collect();
    let total_probes: usize = traces.iter().map(|t| t.steps.len() / 2).sum();

    let workload = AppWorkload {
        app: AppKind::HashSeeding,
        traces,
        layout: vec![
            LayoutSpec::shared_random(Region::HashTable, table_bytes),
            LayoutSpec::shared_spatial(Region::CandidateLists, tuple_bytes),
        ],
        medal: vec![],
    };

    let pes = 64;
    let cpu = run_cpu(&workload);
    let d = run_beacon(
        BeaconVariant::D,
        Optimizations::full(BeaconVariant::D, workload.app),
        &workload,
        pes,
    );
    let s = run_beacon(
        BeaconVariant::S,
        Optimizations::full(BeaconVariant::S, workload.app),
        &workload,
        pes,
    );

    println!("database hash-join probe on BEACON (paper §V extension):");
    println!(
        "  {} probe batches, {} probes total",
        workload.traces.len(),
        total_probes
    );
    println!("  CPU roofline: {:>9} cycles", cpu.dram_cycles);
    println!(
        "  BEACON-D:     {:>9} cycles ({:.0}x, {:.1} probes/kilocycle)",
        d.cycles,
        cpu.dram_cycles as f64 / d.cycles as f64,
        total_probes as f64 * 1000.0 / d.cycles as f64
    );
    println!(
        "  BEACON-S:     {:>9} cycles ({:.0}x)",
        s.cycles,
        cpu.dram_cycles as f64 / s.cycles as f64
    );
    println!("\nNo accelerator change was needed: the probe maps onto the");
    println!("hash-probe PE and the same placement/packing machinery.");
}
