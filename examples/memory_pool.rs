//! The memory-management framework at work: shows how the same workload's
//! regions are allocated across the CXL pool at each optimisation point —
//! vanilla pool striping, the architecture- and data-aware placement, and
//! on-demand expansion with unmodified CXL-DIMMs (the paper's §IV-C).
//!
//! ```text
//! cargo run -p beacon-core --example memory_pool --release
//! ```

use beacon_core::allocator::PoolAllocator;
use beacon_core::config::{BeaconConfig, BeaconVariant, Optimizations};
use beacon_core::mmf::{build_layout, LayoutSpec};
use beacon_core::report::Table;
use beacon_dram::params::DimmGeometry;
use beacon_genomics::trace::{AppKind, Region};

fn describe(cfg: &BeaconConfig, specs: &[LayoutSpec], label: &str) {
    let layout = build_layout(cfg, specs);
    let mut t = Table::new(
        format!("{label} — {}", cfg.variant.label()),
        &["region", "module", "homes", "interleave", "stripe"],
    );
    for (mi, map) in layout.maps.iter().enumerate() {
        for spec in specs {
            let p = map.placement(spec.region).expect("placed");
            let homes: Vec<String> = p
                .homes
                .iter()
                .map(|n| match n {
                    beacon_cxl::message::NodeId::Dimm { switch_idx, slot } => {
                        let kind = if cfg.slot_is_cxlg(*slot) {
                            "CXLG"
                        } else {
                            "CXL"
                        };
                        format!("{kind}[{switch_idx}.{slot}]")
                    }
                    other => format!("{other:?}"),
                })
                .collect();
            let stripe = if p.stripe_bytes == u64::MAX {
                "whole".to_string()
            } else {
                format!("{} B", p.stripe_bytes)
            };
            t.row(&[
                format!("{:?}", spec.region),
                mi.to_string(),
                homes.join(","),
                format!("{:?}", p.interleave),
                stripe,
            ]);
        }
        // Shared placements repeat per module; show module 0 and the last
        // module only (enough to see per-switch replication).
        if mi == 0 && layout.maps.len() > 2 {
            t.row(&[
                "...".into(),
                "...".into(),
                "...".into(),
                "...".into(),
                "...".into(),
            ]);
        }
        if mi == 0 && layout.maps.len() > 2 {
            // jump to the last module
            break;
        }
    }
    println!("{}", t.render());
    println!("CXLG chip-select mode: {:?}\n", layout.cxlg_mode);
}

fn main() {
    let app = AppKind::FmSeeding;
    let specs = [
        LayoutSpec::shared_random(Region::FmIndex, 8 << 20),
        LayoutSpec::shared_spatial(Region::CandidateLists, 16 << 20),
        LayoutSpec::partitioned(Region::ReadBuf, 1 << 20),
    ];

    println!("== The same regions under different memory-management policies ==\n");

    // Vanilla: the host's locality-blind pool striping.
    let vanilla = BeaconConfig::paper_d(app).with_opts(Optimizations::vanilla());
    describe(
        &vanilla,
        &specs,
        "CXL-vanilla (locality-blind pool striping)",
    );

    // Full placement on BEACON-D: hot structures into CXLG-DIMMs.
    let full_d = BeaconConfig::paper_d(app).with_opts(Optimizations::full(BeaconVariant::D, app));
    describe(&full_d, &specs, "architecture- and data-aware placement");

    // BEACON-S: everything on unmodified pool DIMMs.
    let full_s = BeaconConfig::paper_s(app).with_opts(Optimizations::full(BeaconVariant::S, app));
    describe(&full_s, &specs, "architecture- and data-aware placement");

    // Allocation / de-allocation (paper §IV-C): the framework manages the
    // pool at row granularity; freeing a workload's regions returns its
    // rows for the next tenant.
    let cfg = BeaconConfig::paper_d(app);
    let mut pool = PoolAllocator::new(DimmGeometry::sim_scaled(), &cfg.all_dimm_nodes());
    let homes = cfg.unmodified_nodes();
    let node = homes[0];
    let before = pool.free_bytes(node).unwrap();
    let tenant_a = pool.allocate(&homes, 512 << 20, 1).expect("tenant A fits");
    let tenant_b = pool.allocate(&homes, 256 << 20, 1).expect("tenant B fits");
    println!(
        "tenants allocated: {} rows + {} rows per DIMM ({} MiB free -> {} MiB free)",
        tenant_a.rows,
        tenant_b.rows,
        before >> 20,
        pool.free_bytes(node).unwrap() >> 20
    );
    pool.deallocate(&tenant_a).expect("tenant A leaves");
    println!(
        "tenant A de-allocated: {} MiB free again
",
        pool.free_bytes(node).unwrap() >> 20
    );

    // On-demand memory expansion: grow the pool with unmodified DIMMs.
    let mut grown = full_d;
    grown.unmodified_per_switch = 6;
    println!(
        "on-demand expansion: pool grows from {} to {} DIMMs by adding unmodified CXL-DIMMs",
        full_d.total_dimms(),
        grown.total_dimms()
    );
    describe(&grown, &specs, "after expansion (+8 unmodified CXL-DIMMs)");
}
