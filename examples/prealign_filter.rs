//! DNA pre-alignment filtering: measures the filter's accept/reject
//! quality on true vs decoy candidate locations, then runs the workload
//! on both BEACON designs (the paper's Fig. 16 scenario).
//!
//! ```text
//! cargo run -p beacon-core --example prealign_filter --release
//! ```

use beacon_core::config::{BeaconVariant, Optimizations};
use beacon_core::experiments::common::{prealign_workload, run_beacon, run_cpu, WorkloadScale};
use beacon_genomics::prealign::PreAlignFilter;
use beacon_genomics::prelude::*;
use beacon_sim::rng::SimRng;

fn main() {
    // ---- filter quality -------------------------------------------------
    let genome = Genome::synthetic(GenomeId::Nf, 50_000, 42);
    let filter = PreAlignFilter::new(5);
    let mut sampler = ReadSampler::new(&genome, 100, 0.02, 7);
    let mut rng = SimRng::from_seed(11);

    let n = 500;
    let mut true_accepted = 0;
    let mut decoy_rejected = 0;
    for _ in 0..n {
        let read = sampler.next_read();
        if filter
            .filter(read.bases(), genome.sequence(), read.origin())
            .accept
        {
            true_accepted += 1;
        }
        let decoy = rng.index(genome.len() - 100);
        if !filter.filter(read.bases(), genome.sequence(), decoy).accept {
            decoy_rejected += 1;
        }
    }
    println!("pre-alignment filter (edit threshold 5, 2% error reads):");
    println!("  true locations accepted: {true_accepted}/{n}");
    println!("  decoy locations rejected: {decoy_rejected}/{n}");

    // ---- acceleration ----------------------------------------------------
    let scale = WorkloadScale {
        pt_genome_len: 100_000,
        reads: 512,
        read_len: 100,
        error_rate: 0.02,
        kmer_k: 28,
        kmer_reads: 1,
        cbf_bytes: 1024,
        seed: 42,
    };
    let pes = 64;
    let w = prealign_workload(GenomeId::Nf, &scale);
    let cpu = run_cpu(&w);
    let d = run_beacon(
        BeaconVariant::D,
        Optimizations::full(BeaconVariant::D, w.app),
        &w,
        pes,
    );
    let s = run_beacon(
        BeaconVariant::S,
        Optimizations::full(BeaconVariant::S, w.app),
        &w,
        pes,
    );
    println!("\n{} candidates filtered on hardware:", w.traces.len());
    println!("  CPU (Shouji roofline): {:>9} cycles", cpu.dram_cycles);
    println!(
        "  BEACON-D:              {:>9} cycles ({:.0}x)",
        d.cycles,
        cpu.dram_cycles as f64 / d.cycles as f64
    );
    println!(
        "  BEACON-S:              {:>9} cycles ({:.0}x)",
        s.cycles,
        cpu.dram_cycles as f64 / s.cycles as f64
    );
}
