//! Multiple applications sharing one memory pool: BEACON's PEs are
//! multi-purpose (FM + hash + KMC + pre-alignment engines, paper
//! Fig. 5 d), so one pool can co-run different pipeline stages — and the
//! pool's capacity is shared on demand (the memory-pooling story of
//! §II).
//!
//! ```text
//! cargo run -p beacon-core --example multi_app_pool --release
//! ```

use beacon_core::config::{BeaconConfig, BeaconVariant, Optimizations};
use beacon_core::experiments::common::{fm_workload, prealign_workload, WorkloadScale};
use beacon_core::mmf::build_layout;
use beacon_core::system::BeaconSystem;
use beacon_genomics::trace::AppKind;

fn main() {
    let scale = WorkloadScale {
        pt_genome_len: 100_000,
        reads: 512,
        read_len: 64,
        error_rate: 0.01,
        kmer_k: 28,
        kmer_reads: 256,
        cbf_bytes: 256 * 1024,
        seed: 42,
    };
    // FM seeding stresses the CXLG-DIMMs; pre-alignment streams from the
    // unmodified expansion DIMMs — disjoint resources, so they overlap.
    let fm = fm_workload(beacon_genomics::genome::GenomeId::Pt, &scale);
    let km = prealign_workload(beacon_genomics::genome::GenomeId::Pt, &scale);

    // One layout covering both applications' regions: the memory manager
    // allocates disjoint row ranges for the FM index, the reference and
    // the read buffers on the same pool.
    let mut specs = fm.layout.clone();
    specs.extend(km.layout.iter().cloned());

    // The system config carries a default app for PE latency, but tasks
    // are dispatched per-application (submit_for_app), so the mix is
    // irrelevant to correctness.
    let mut cfg = BeaconConfig::paper_d(AppKind::FmSeeding)
        .with_opts(Optimizations::full(BeaconVariant::D, AppKind::FmSeeding));
    cfg.pes_per_module = 64;
    cfg.refresh_enabled = false;

    // Run each app alone, then both colocated.
    let solo_fm = {
        let mut sys = BeaconSystem::new(cfg, build_layout(&cfg, &specs));
        sys.submit_round_robin(fm.traces.iter().cloned());
        sys.run().cycles
    };
    let solo_km = {
        let mut sys = BeaconSystem::new(cfg, build_layout(&cfg, &specs));
        sys.submit_round_robin(km.traces.iter().cloned());
        sys.run().cycles
    };
    let colocated = {
        let mut sys = BeaconSystem::new(cfg, build_layout(&cfg, &specs));
        // Round-robin dispatch spreads both task streams over the
        // modules, so FM and k-mer tasks share every module's PEs.
        let mixed = fm.traces.iter().cloned().chain(km.traces.iter().cloned());
        sys.submit_round_robin(mixed);
        let r = sys.run();
        println!(
            "colocated run: {} tasks ({} FM seeding + {} pre-alignment) in {} cycles",
            r.tasks,
            fm.traces.len(),
            km.traces.len(),
            r.cycles
        );
        r.cycles
    };

    println!("FM seeding alone:      {solo_fm:>8} cycles");
    println!("pre-alignment alone:   {solo_km:>8} cycles");
    println!("colocated:             {colocated:>8} cycles");
    println!(
        "running them back to back would take {} cycles; colocation saves {:.0}%",
        solo_fm + solo_km,
        100.0 * (1.0 - colocated as f64 / (solo_fm + solo_km) as f64)
    );
}
