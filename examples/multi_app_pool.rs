//! Multiple applications sharing one memory pool: BEACON's PEs are
//! multi-purpose (FM + hash + KMC + pre-alignment engines, paper
//! Fig. 5 d), so one pool can co-run different pipeline stages — and the
//! pool's capacity is shared on demand (the memory-pooling story of
//! §II).
//!
//! The co-run logic lives in `beacon-pool` now: a single-tenant service
//! spec with `max_corun: 1` serialises the jobs, and the same spec with
//! co-running enabled packs them into one round — the colocation saving
//! falls out of the two reports.
//!
//! ```text
//! cargo run -p beacon-pool --example multi_app_pool --release
//! ```

use beacon_core::experiments::common::WorkloadScale;
use beacon_genomics::genome::GenomeId;
use beacon_pool::prelude::*;

fn main() {
    let scale = WorkloadScale {
        pt_genome_len: 100_000,
        reads: 512,
        read_len: 64,
        error_rate: 0.01,
        kmer_k: 28,
        kmer_reads: 256,
        cbf_bytes: 256 * 1024,
        seed: 42,
    };
    // FM seeding stresses the CXLG-DIMMs; pre-alignment streams from the
    // unmodified expansion DIMMs — disjoint resources, so they overlap.
    let mut spec = ServiceSpec::demo(42);
    spec.scale = scale;
    spec.pes_per_module = 64;
    spec.synth = None;
    spec.tenants.truncate(1);
    for kind in [JobKind::FmSeeding, JobKind::PreAlignment] {
        spec.jobs.push(JobSpec {
            id: 0,
            tenant: "broad".into(),
            kind,
            genome: GenomeId::Pt,
            arrival_round: 0,
        });
    }

    // Serialised: one job per round.
    spec.max_corun = 1;
    let solo = run_service(&spec);
    let solo_cycles: Vec<u64> = solo.jobs.iter().map(|j| j.service_cycles).collect();

    // Colocated: the scheduler packs both jobs into one round.
    spec.max_corun = 2;
    let colocated = run_service(&spec);
    assert_eq!(colocated.rounds.len(), 1, "disjoint regions co-run");
    let colo_cycles = colocated.rounds[0].cycles;

    println!(
        "colocated round: {} jobs in {} cycles",
        colocated.rounds[0].jobs.len(),
        colo_cycles
    );
    println!("FM seeding alone:      {:>8} cycles", solo_cycles[0]);
    println!("pre-alignment alone:   {:>8} cycles", solo_cycles[1]);
    println!("colocated:             {colo_cycles:>8} cycles");
    let back_to_back: u64 = solo_cycles.iter().sum();
    println!(
        "running them back to back would take {} cycles; colocation saves {:.0}%",
        back_to_back,
        100.0 * (1.0 - colo_cycles as f64 / back_to_back as f64)
    );
}
