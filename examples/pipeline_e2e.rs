//! The full genome-analysis pipeline of the paper's Fig. 2, end to end,
//! on FASTA/FASTQ data: seeding (BEACON) → pre-alignment filtering
//! (BEACON) → banded alignment (host).
//!
//! Pass a FASTA reference path as the first argument to run on your own
//! data; without arguments a demo reference is generated, written to
//! FASTA, and read back (exercising the I/O layer either way).
//!
//! ```text
//! cargo run -p beacon-core --example pipeline_e2e --release [ref.fasta]
//! ```

use std::io::BufReader;

use beacon_core::config::{BeaconVariant, Optimizations};
use beacon_core::experiments::common::AppWorkload;
use beacon_core::mmf::LayoutSpec;
use beacon_genomics::io::{read_fasta, reads_to_fastq, write_fasta, write_fastq, FastaRecord};
use beacon_genomics::prelude::*;
use beacon_genomics::trace::Region;

fn main() {
    // ---- reference: from file or generated --------------------------------
    let arg = std::env::args().nth(1);
    let fasta_path = match &arg {
        Some(p) => p.clone(),
        None => {
            let path = std::env::temp_dir().join("beacon_demo_ref.fasta");
            let genome = Genome::synthetic(GenomeId::Pt, 120_000, 42);
            let record = FastaRecord {
                id: "demo_pt synthetic".into(),
                seq: genome.sequence().clone(),
                substituted: 0,
            };
            let file = std::fs::File::create(&path).expect("create demo FASTA");
            write_fasta(file, &[record]).expect("write demo FASTA");
            path.display().to_string()
        }
    };
    let file = std::fs::File::open(&fasta_path).expect("open FASTA");
    let records = read_fasta(BufReader::new(file)).expect("parse FASTA");
    let reference = &records[0];
    println!(
        "reference '{}': {} bases ({} ambiguity substitutions)",
        reference.id,
        reference.seq.len(),
        reference.substituted
    );

    // ---- stage 0: index + reads ------------------------------------------
    let genome_holder;
    let genome: &Genome = {
        // Wrap the parsed sequence in a Genome for the read sampler.
        genome_holder = Genome::from_sequence(GenomeId::Pt, reference.seq.clone());
        &genome_holder
    };
    let index = FmIndex::build(genome.sequence());
    let mut sampler = ReadSampler::new(genome, 80, 0.02, 7);
    let reads = sampler.take_reads(512);

    // Round-trip the reads through FASTQ (what a real pipeline would
    // consume).
    let fastq_path = std::env::temp_dir().join("beacon_demo_reads.fastq");
    write_fastq(
        std::fs::File::create(&fastq_path).expect("create FASTQ"),
        &reads_to_fastq(&reads),
    )
    .expect("write FASTQ");
    println!("wrote {} reads to {}", reads.len(), fastq_path.display());

    // ---- stage 1: FM seeding on BEACON-D ----------------------------------
    let seed_traces: Vec<TaskTrace> = reads
        .iter()
        .map(|r| index.trace_search(&r.bases()[..24]))
        .collect();
    let seeded: Vec<(usize, Vec<u32>)> = reads
        .iter()
        .enumerate()
        .filter_map(|(i, r)| {
            let range = index.backward_search(&r.bases()[..24]);
            if range.is_empty() {
                None
            } else {
                Some((i, index.locate(range, 8)))
            }
        })
        .collect();
    println!(
        "seeding: {}/{} reads produced candidates",
        seeded.len(),
        reads.len()
    );

    let workload = AppWorkload {
        app: AppKind::FmSeeding,
        traces: seed_traces,
        layout: vec![LayoutSpec::shared_random(
            Region::FmIndex,
            index.index_bytes(),
        )],
        medal: vec![],
    };
    let run = beacon_core::experiments::common::run_beacon(
        BeaconVariant::D,
        Optimizations::full(BeaconVariant::D, AppKind::FmSeeding),
        &workload,
        64,
    );
    println!("  BEACON-D seeding: {} cycles", run.cycles);

    // ---- stage 2: pre-alignment filter -------------------------------------
    let filter = PreAlignFilter::new(6);
    let mut survivors = Vec::new();
    let mut filtered_out = 0usize;
    for (ri, candidates) in &seeded {
        for &pos in candidates {
            // The seed matches somewhere in the read; test the implied
            // full-read location.
            let verdict = filter.filter(reads[*ri].bases(), genome.sequence(), pos as usize);
            if verdict.accept {
                survivors.push((*ri, pos));
            } else {
                filtered_out += 1;
            }
        }
    }
    println!(
        "pre-alignment: {} candidate pairs accepted, {} rejected",
        survivors.len(),
        filtered_out
    );

    // ---- stage 3: banded alignment (host side) -----------------------------
    let mut aligned = 0usize;
    let mut total_edits = 0u64;
    for &(ri, pos) in survivors.iter().take(200) {
        if let Some(a) = banded_align(reads[ri].bases(), genome.sequence(), pos as usize, 6) {
            aligned += 1;
            total_edits += a.edits as u64;
        }
    }
    println!(
        "alignment: {aligned} pairs aligned, mean edits {:.2}",
        total_edits as f64 / aligned.max(1) as f64
    );
}
