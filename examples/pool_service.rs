//! The pool as a service: two tenants contending for one BEACON pool.
//!
//! Both tenants submit the same burst of jobs at round 0. Because two
//! same-kind jobs place the same region names, they can never co-run —
//! the pool is genuinely contended and the weighted fair-share knob
//! decides who goes first. Running the identical workload twice with
//! the weight ratio flipped demonstrably reverses the completion order
//! (the acceptance criterion of the service PR), and the per-tenant
//! SLO table shows where the losing tenant's time went: queue wait, not
//! service.
//!
//! ```text
//! cargo run -p beacon-pool --example pool_service --release
//! ```

use beacon_genomics::genome::GenomeId;
use beacon_pool::prelude::*;

fn contended_spec(seed: u64, weight_a: u64, weight_b: u64) -> ServiceSpec {
    let mut spec = ServiceSpec::demo(seed);
    spec.synth = None;
    spec.tenants.clear();
    spec.tenants.push(TenantSpec {
        name: "alpha".into(),
        weight: weight_a,
        quota_pct: 100,
    });
    spec.tenants.push(TenantSpec {
        name: "beta".into(),
        weight: weight_b,
        quota_pct: 100,
    });
    // Same-kind bursts: every job places Region::FmIndex, so rounds are
    // single-job and the scheduler's deficit order is the whole story.
    for tenant in ["alpha", "beta"] {
        for _ in 0..3 {
            spec.jobs.push(JobSpec {
                id: 0,
                tenant: tenant.into(),
                kind: JobKind::FmSeeding,
                genome: GenomeId::Pt,
                arrival_round: 0,
            });
        }
    }
    spec
}

fn mean_finish_round(report: &ServiceReport, tenant: &str) -> f64 {
    let rounds: Vec<u64> = report
        .jobs
        .iter()
        .filter(|j| j.tenant == tenant)
        .map(|j| j.run_round)
        .collect();
    rounds.iter().sum::<u64>() as f64 / rounds.len() as f64
}

fn main() {
    let heavy_alpha = run_service(&contended_spec(42, 8, 1));
    let heavy_beta = run_service(&contended_spec(42, 1, 8));

    println!("=== alpha weight 8, beta weight 1 ===");
    print!("{}", heavy_alpha.render_text());
    println!("=== alpha weight 1, beta weight 8 ===");
    print!("{}", heavy_beta.render_text());

    let a_first = mean_finish_round(&heavy_alpha, "alpha");
    let b_first = mean_finish_round(&heavy_alpha, "beta");
    let a_second = mean_finish_round(&heavy_beta, "alpha");
    let b_second = mean_finish_round(&heavy_beta, "beta");
    println!(
        "mean finish round — alpha: {a_first:.1} vs {a_second:.1}, \
         beta: {b_first:.1} vs {b_second:.1}"
    );
    assert!(
        a_first < b_first && b_second < a_second,
        "flipping the weight ratio must flip the completion order"
    );
    println!("weight flip reverses completion order: OK");
}
