//! Quickstart: index a genome, run FM-index seeding on BEACON-D, and
//! compare against the CPU baseline.
//!
//! ```text
//! cargo run -p beacon-core --example quickstart --release
//! ```

use beacon_accel::cpu_model::{CpuModel, WorkloadSummary};
use beacon_core::prelude::*;
use beacon_genomics::prelude::*;
use beacon_genomics::trace::Region;

fn main() {
    // 1. A synthetic reference genome (stands in for an NCBI assembly)
    //    and an FM-index over it.
    let genome = Genome::synthetic(GenomeId::Pt, 100_000, 42);
    let index = FmIndex::build(genome.sequence());
    println!(
        "genome {}: {} bases, FM-index {} KiB ({} Occ buckets of 32 B)",
        genome.id().label(),
        genome.len(),
        index.index_bytes() / 1024,
        index.index_bytes() / 32,
    );

    // 2. Sample sequencing reads and derive each read's hardware task
    //    trace (the dependency chain of fine-grained Occ-bucket reads).
    let mut sampler = ReadSampler::new(&genome, 64, 0.01, 7);
    let reads = sampler.take_reads(1024);
    let traces: Vec<TaskTrace> = reads
        .iter()
        .map(|r| index.trace_search(r.bases()))
        .collect();
    let found = reads
        .iter()
        .filter(|r| !index.backward_search(r.bases()).is_empty())
        .count();
    println!(
        "{} reads sampled; {found} match the reference exactly",
        reads.len()
    );

    // 3. Build the fully-optimised BEACON-D system and run the workload.
    let app = AppKind::FmSeeding;
    let cfg = BeaconConfig::paper(BeaconVariant::D, app)
        .with_opts(Optimizations::full(BeaconVariant::D, app));
    let layout = build_layout(
        &cfg,
        &[LayoutSpec::shared_random(
            Region::FmIndex,
            index.index_bytes(),
        )],
    );
    let mut system = BeaconSystem::new(cfg, layout);
    system.submit_round_robin(traces.iter().cloned());
    let result = system.run();

    // 4. Compare against the 48-thread CPU roofline and report energy.
    let cpu = CpuModel::default().run(&WorkloadSummary::from_traces(&traces));
    let energy = EnergyModel::beacon(cfg.total_pes()).breakdown(&result);

    println!(
        "\nBEACON-D ({} PEs over {} CXLG-DIMMs):",
        cfg.total_pes(),
        cfg.compute_modules()
    );
    println!(
        "  {} tasks in {} DRAM cycles ({:.2} µs)",
        result.tasks,
        result.cycles,
        result.seconds(1250) * 1e6
    );
    println!(
        "  speedup vs 48-thread CPU: {:.0}x",
        cpu.dram_cycles as f64 / result.cycles as f64
    );
    println!(
        "  energy: {:.2} µJ ({:.1}% communication, {:.1}% computation)",
        energy.total_joules() * 1e6,
        energy.comm_share() * 100.0,
        energy.compute_share() * 100.0
    );
    println!(
        "  CPU energy: {:.2} µJ ({:.0}x reduction)",
        cpu.energy_joules * 1e6,
        cpu.energy_joules / energy.total_joules()
    );
}
