//! DNA-seeding pipeline: runs FM-index and hash-index seeding across the
//! paper's five genomes, comparing BEACON-D, BEACON-S, MEDAL and the CPU
//! baseline — a miniature of the paper's Figs. 12 and 14.
//!
//! ```text
//! cargo run -p beacon-core --example seeding_pipeline --release
//! ```

use beacon_core::config::{BeaconVariant, Optimizations};
use beacon_core::experiments::common::{
    fm_workload, hash_workload, run_beacon, run_cpu, run_medal, AppWorkload, WorkloadScale,
};
use beacon_core::report::{fmt_ratio, Table};
use beacon_genomics::genome::GenomeId;

fn run_app(name: &str, scale: &WorkloadScale, pes: usize, build: &dyn Fn(GenomeId) -> AppWorkload) {
    let _ = scale;
    let mut t = Table::new(
        format!("{name} across the five genomes"),
        &[
            "genome",
            "CPU",
            "MEDAL",
            "BEACON-D",
            "BEACON-S",
            "D vs MEDAL",
        ],
    );
    for g in GenomeId::FIVE {
        let w = build(g);
        let cpu = run_cpu(&w);
        let medal = run_medal(&w, false, pes);
        let d = run_beacon(
            BeaconVariant::D,
            Optimizations::full(BeaconVariant::D, w.app),
            &w,
            pes,
        );
        let s = run_beacon(
            BeaconVariant::S,
            Optimizations::full(BeaconVariant::S, w.app),
            &w,
            pes,
        );
        t.row(&[
            g.label().to_string(),
            format!("{} cyc", cpu.dram_cycles),
            format!("{} cyc", medal.cycles),
            format!("{} cyc", d.cycles),
            format!("{} cyc", s.cycles),
            fmt_ratio(medal.cycles as f64 / d.cycles as f64),
        ]);
    }
    println!("{}", t.render());
}

fn main() {
    let scale = WorkloadScale {
        pt_genome_len: 100_000,
        reads: 512,
        read_len: 64,
        error_rate: 0.01,
        kmer_k: 28,
        kmer_reads: 1,
        cbf_bytes: 1024,
        seed: 42,
    };
    let pes = 64;

    run_app("FM-index seeding", &scale, pes, &|g| fm_workload(g, &scale));
    run_app("hash-index seeding", &scale, pes, &|g| {
        hash_workload(g, &scale)
    });
}
